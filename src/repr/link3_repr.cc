#include "repr/link3_repr.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/bitstream.h"
#include "util/coding.h"
#include "util/rle.h"

namespace wg {

namespace {

// Block layout:
//   u32 payload byte length
//   u16 number of lists
//   per list: u16 bit offset into the payload
//   payload bits.
//
// List encoding (all ids in URL-sorted space):
//   4 bits: reference offset r in [0, 8]; 0 = no reference
//   if r > 0: RLE copy bit-vector (length = size of list i-r, known after
//             decoding it)
//   residuals: gamma count, then first value zig-zag-delta-coded against
//   the source id, then delta-coded gaps-minus-one.

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void WriteResiduals(BitWriter* w, const std::vector<PageId>& residuals,
                    PageId source) {
  WriteGamma(w, residuals.size());
  for (size_t i = 0; i < residuals.size(); ++i) {
    if (i == 0) {
      WriteDelta(w, ZigZag(static_cast<int64_t>(residuals[0]) -
                           static_cast<int64_t>(source)));
    } else {
      WriteDelta(w, residuals[i] - residuals[i - 1] - 1);
    }
  }
}

void ReadResiduals(BitReader* r, PageId source, std::vector<PageId>* out) {
  uint64_t count = ReadGamma(r);
  PageId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (i == 0) {
      prev = static_cast<PageId>(static_cast<int64_t>(source) +
                                 UnZigZag(ReadDelta(r)));
    } else {
      prev += static_cast<PageId>(ReadDelta(r)) + 1;
    }
    out->push_back(prev);
  }
}

uint64_t ResidualCost(const std::vector<PageId>& residuals, PageId source) {
  uint64_t bits = GammaCost(residuals.size());
  for (size_t i = 0; i < residuals.size(); ++i) {
    if (i == 0) {
      bits += DeltaCost(ZigZag(static_cast<int64_t>(residuals[0]) -
                               static_cast<int64_t>(source)));
    } else {
      bits += DeltaCost(residuals[i] - residuals[i - 1] - 1);
    }
  }
  return bits;
}

// Splits `list` into (copied bit per ref entry, residuals) against `ref`.
void DiffAgainstReference(const std::vector<PageId>& list,
                          const std::vector<PageId>& ref,
                          std::vector<uint8_t>* copy_bits,
                          std::vector<PageId>* residuals) {
  copy_bits->assign(ref.size(), 0);
  residuals->clear();
  size_t i = 0, j = 0;
  while (i < list.size() && j < ref.size()) {
    if (list[i] == ref[j]) {
      (*copy_bits)[j] = 1;
      ++i;
      ++j;
    } else if (list[i] < ref[j]) {
      residuals->push_back(list[i]);
      ++i;
    } else {
      ++j;
    }
  }
  for (; i < list.size(); ++i) residuals->push_back(list[i]);
}

}  // namespace

Result<std::unique_ptr<Link3Repr>> Link3Repr::Build(const WebGraph& graph,
                                                    const std::string& path,
                                                    Options options) {
  std::unique_ptr<Link3Repr> repr(new Link3Repr());
  repr->options_ = options;
  size_t n = graph.num_pages();

  // URL-order permutation.
  repr->orig_of_sorted_.resize(n);
  std::iota(repr->orig_of_sorted_.begin(), repr->orig_of_sorted_.end(), 0);
  std::sort(repr->orig_of_sorted_.begin(), repr->orig_of_sorted_.end(),
            [&graph](PageId a, PageId b) { return graph.url(a) < graph.url(b); });
  repr->sorted_of_orig_.resize(n);
  for (PageId s = 0; s < n; ++s) {
    repr->sorted_of_orig_[repr->orig_of_sorted_[s]] = s;
  }

  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  repr->file_ = std::move(file).value();

  // Blocks are flushed either at pages_per_block lists or when the payload
  // approaches the u16 offset limit (transpose hubs can have huge lists).
  const uint32_t bs = options.pages_per_block;
  constexpr uint64_t kFlushBits = 48000;
  Link3Repr* r = repr.get();
  std::vector<std::vector<PageId>> lists;
  BitWriter payload;
  std::vector<uint16_t> offsets;
  PageId block_first = 0;

  auto flush_block = [&]() -> Status {
    if (lists.empty()) return Status::OK();
    std::vector<uint8_t> bits = payload.Finish();
    std::string blob;
    PutFixed32(&blob, static_cast<uint32_t>(bits.size()));
    uint16_t count = static_cast<uint16_t>(lists.size());
    blob.push_back(static_cast<char>(count & 0xff));
    blob.push_back(static_cast<char>(count >> 8));
    for (uint16_t off : offsets) {
      blob.push_back(static_cast<char>(off & 0xff));
      blob.push_back(static_cast<char>(off >> 8));
    }
    blob.append(reinterpret_cast<const char*>(bits.data()), bits.size());
    WG_RETURN_IF_ERROR(r->file_->Append(blob.data(), blob.size()));
    r->block_first_.push_back(block_first);
    r->block_offsets_.push_back(r->file_->size());
    r->encoded_bits_ += blob.size() * 8;
    lists.clear();
    payload = BitWriter();
    offsets.clear();
    return Status::OK();
  };

  repr->block_offsets_.push_back(0);
  std::vector<uint8_t> copy_bits, best_copy_bits;
  std::vector<PageId> residuals, best_residuals;
  for (PageId s = 0; s < n; ++s) {
    if (lists.size() >= bs || payload.bit_count() > kFlushBits) {
      WG_RETURN_IF_ERROR(flush_block());
    }
    if (lists.empty()) block_first = s;
    PageId orig = repr->orig_of_sorted_[s];
    std::vector<PageId> list;
    list.reserve(graph.out_degree(orig));
    for (PageId q : graph.OutLinks(orig)) {
      list.push_back(repr->sorted_of_orig_[q]);
    }
    std::sort(list.begin(), list.end());

    offsets.push_back(static_cast<uint16_t>(payload.bit_count()));
    // Baseline: no reference.
    uint64_t best_cost = 4 + ResidualCost(list, s);
    uint32_t best_ref = 0;
    uint32_t window = std::min<uint32_t>(options.reference_window,
                                         static_cast<uint32_t>(lists.size()));
    for (uint32_t back = 1; back <= window; ++back) {
      const auto& ref = lists[lists.size() - back];
      if (ref.empty()) continue;
      DiffAgainstReference(list, ref, &copy_bits, &residuals);
      uint64_t cost = 4 + RleBitsCost(copy_bits) + ResidualCost(residuals, s);
      if (cost < best_cost) {
        best_cost = cost;
        best_ref = back;
        best_copy_bits = copy_bits;
        best_residuals = residuals;
      }
    }
    payload.WriteBits(best_ref, 4);
    if (best_ref > 0) {
      WriteRleBits(&payload, best_copy_bits);
      WriteResiduals(&payload, best_residuals, s);
    } else {
      WriteResiduals(&payload, list, s);
    }
    lists.push_back(std::move(list));
  }
  WG_RETURN_IF_ERROR(flush_block());

  repr->num_edges_ = graph.num_edges();
  repr->domains_ = DomainIndex(graph);
  {
    ReprStats scratch;
    repr->disk_tracker_.Absorb(repr->file_->seek_ops(),
                               repr->file_->transferred_bytes(), &scratch);
  }
  Link3Repr* raw = repr.get();
  repr->cache_ = std::make_unique<ByteCache>(
      options.buffer_bytes, [raw](uint32_t block, std::vector<uint8_t>* blob) {
        return raw->LoadBlock(block, blob);
      });
  repr->RegisterStats("link3");
  return repr;
}

Status Link3Repr::LoadBlock(uint32_t block, std::vector<uint8_t>* blob) {
  uint64_t start = block_offsets_[block];
  uint64_t len = block_offsets_[block + 1] - start;
  blob->resize(len);
  WG_RETURN_IF_ERROR(
      file_->Read(start, len, reinterpret_cast<char*>(blob->data())));
  stats_.disk_reads += 1;
  stats_.bytes_read += len;
  disk_tracker_.Absorb(file_->seek_ops(), file_->transferred_bytes(),
                       &stats_);
  return Status::OK();
}

Status Link3Repr::DecodeList(const std::vector<uint8_t>& blob,
                             PageId block_base, uint32_t index,
                             BlockMemo* memo, std::vector<PageId>* out) const {
  if (memo->decoded[index]) {
    *out = memo->lists[index];
    return Status::OK();
  }
  if (blob.size() < 6) return Status::Corruption("link3: short block");
  uint32_t payload_bytes = DecodeFixed32(
      reinterpret_cast<const char*>(blob.data()));
  uint32_t count = static_cast<uint32_t>(blob[4]) |
                   (static_cast<uint32_t>(blob[5]) << 8);
  if (index >= count) return Status::Corruption("link3: bad list index");
  size_t header = 6 + 2 * static_cast<size_t>(count);
  if (blob.size() < header + payload_bytes) {
    return Status::Corruption("link3: truncated block");
  }
  uint16_t bit_off = static_cast<uint16_t>(blob[6 + 2 * index]) |
                     (static_cast<uint16_t>(blob[7 + 2 * index]) << 8);
  BitReader reader(blob.data() + header, payload_bytes);
  reader.SkipBits(bit_off);

  uint32_t ref_off = static_cast<uint32_t>(reader.ReadBits(4));
  std::vector<PageId> result;
  PageId source = block_base + index;
  if (ref_off > 0) {
    std::vector<PageId> ref_list;
    WG_RETURN_IF_ERROR(
        DecodeList(blob, block_base, index - ref_off, memo, &ref_list));
    // The recursion used its own reader; ours continues where it left off.
    std::vector<uint8_t> copy_bits;
    ReadRleBits(&reader, ref_list.size(), &copy_bits);
    // copy_bits comes up short on truncated input (the !ok check below
    // rejects the record) -- don't read past it.
    size_t nbits = std::min(ref_list.size(), copy_bits.size());
    for (size_t j = 0; j < nbits; ++j) {
      if (copy_bits[j]) result.push_back(ref_list[j]);
    }
    std::vector<PageId> residuals;
    ReadResiduals(&reader, source, &residuals);
    std::vector<PageId> merged;
    merged.reserve(result.size() + residuals.size());
    std::merge(result.begin(), result.end(), residuals.begin(),
               residuals.end(), std::back_inserter(merged));
    result = std::move(merged);
  } else {
    ReadResiduals(&reader, source, &result);
  }
  if (!reader.ok()) return Status::Corruption("link3: bad stream");
  memo->lists[index] = result;
  memo->decoded[index] = 1;
  *out = std::move(result);
  return Status::OK();
}

// Per-cursor scratch plus a block-level decode memo: consecutive Links()
// calls landing in the same block (URL-order locality makes this the
// common case) reuse already-decoded reference chains instead of
// re-walking them, and reuse all buffers instead of reallocating.
class Link3Repr::Cursor : public AdjacencyCursor {
 public:
  explicit Cursor(Link3Repr* repr) : repr_(repr) {}

  Status Links(PageId p, LinkView* view) override {
    if (p >= repr_->sorted_of_orig_.size()) {
      return Status::OutOfRange("page id out of range");
    }
    obs::Span span("link3.get_links", "repr");
    span.AddArg("page", p);
    ReprStats& stats = repr_->stats_;
    ++stats.adjacency_requests;
    PageId s = repr_->sorted_of_orig_[p];
    const auto& block_first = repr_->block_first_;
    auto it = std::upper_bound(block_first.begin(), block_first.end(), s);
    uint32_t block = static_cast<uint32_t>((it - block_first.begin()) - 1);
    PageId base = block_first[block];
    uint32_t index = s - base;
    WG_ASSIGN_OR_RETURN(const std::vector<uint8_t>* blob,
                        repr_->cache_->Get(block, &block_scratch_));
    if (block != memo_block_) {
      memo_.lists.resize(repr_->options_.pages_per_block);
      memo_.decoded.assign(repr_->options_.pages_per_block, 0);
      memo_block_ = block;
    }
    WG_RETURN_IF_ERROR(
        repr_->DecodeList(*blob, base, index, &memo_, &sorted_space_));
    links_.clear();
    links_.reserve(sorted_space_.size());
    for (PageId q : sorted_space_) links_.push_back(repr_->orig_of_sorted_[q]);
    std::sort(links_.begin(), links_.end());
    stats.edges_returned += sorted_space_.size();
    stats.cache_hits = repr_->cache_->hits();
    stats.cache_misses = repr_->cache_->misses();
    *view = LinkView(links_.data(), links_.size());
    return Status::OK();
  }

 private:
  Link3Repr* repr_;
  uint32_t memo_block_ = UINT32_MAX;
  BlockMemo memo_;
  std::vector<uint8_t> block_scratch_;
  std::vector<PageId> sorted_space_;
  std::vector<PageId> links_;
};

std::unique_ptr<AdjacencyCursor> Link3Repr::NewCursor() {
  return std::make_unique<Cursor>(this);
}

Status Link3Repr::PagesInDomain(const std::string& domain,
                                std::vector<PageId>* out) {
  const auto& pages = domains_.Pages(domain);
  out->insert(out->end(), pages.begin(), pages.end());
  return Status::OK();
}

size_t Link3Repr::resident_memory() const {
  return (sorted_of_orig_.size() + orig_of_sorted_.size() +
          block_first_.size()) *
             sizeof(PageId) +
         block_offsets_.size() * sizeof(uint64_t) + domains_.MemoryUsage() +
         cache_->bytes_used();
}

}  // namespace wg
