#include "repr/huffman_repr.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/bitstream.h"
#include "util/coding.h"

namespace wg {

std::unique_ptr<HuffmanRepr> HuffmanRepr::Build(const WebGraph& graph) {
  std::unique_ptr<HuffmanRepr> repr(new HuffmanRepr());

  // Code lengths from in-degree: frequency of page i as a link target.
  std::vector<uint32_t> in = graph.InDegrees();
  std::vector<uint64_t> freqs(in.begin(), in.end());
  repr->code_ = HuffmanCode::Build(freqs);

  BitWriter writer;
  repr->bit_offsets_.reserve(graph.num_pages() + 1);
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    repr->bit_offsets_.push_back(writer.bit_count());
    auto links = graph.OutLinks(p);
    WriteGamma(&writer, links.size());
    for (PageId q : links) repr->code_.Encode(&writer, q);
  }
  repr->bit_offsets_.push_back(writer.bit_count());
  repr->encoded_bits_ = writer.bit_count();
  repr->data_ = writer.Finish();
  repr->num_edges_ = graph.num_edges();
  repr->domains_ = DomainIndex(graph);
  repr->RegisterStats("huffman");
  return repr;
}

// Decodes each list into a per-cursor scratch array reused across calls.
class HuffmanRepr::Cursor : public AdjacencyCursor {
 public:
  explicit Cursor(HuffmanRepr* repr) : repr_(repr) {}

  Status Links(PageId p, LinkView* view) override {
    if (p + 1 >= repr_->bit_offsets_.size()) {
      return Status::OutOfRange("page id out of range");
    }
    obs::Span span("huffman.get_links", "repr");
    span.AddArg("page", p);
    ++repr_->stats_.adjacency_requests;
    BitReader reader(repr_->data_.data(), repr_->data_.size());
    reader.SkipBits(repr_->bit_offsets_[p]);
    uint64_t count = ReadGamma(&reader);
    links_.clear();
    links_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t q = repr_->code_.Decode(&reader);
      if (q >= repr_->num_pages() || !reader.ok()) {
        return Status::Corruption("huffman repr: bad stream");
      }
      links_.push_back(q);
    }
    // The stream stores targets in sorted order already; keep the contract
    // even if a future encoder changes that.
    if (!std::is_sorted(links_.begin(), links_.end())) {
      std::sort(links_.begin(), links_.end());
    }
    repr_->stats_.edges_returned += count;
    *view = LinkView(links_.data(), links_.size());
    return Status::OK();
  }

 private:
  HuffmanRepr* repr_;
  std::vector<PageId> links_;
};

std::unique_ptr<AdjacencyCursor> HuffmanRepr::NewCursor() {
  return std::make_unique<Cursor>(this);
}

Status HuffmanRepr::PagesInDomain(const std::string& domain,
                                  std::vector<PageId>* out) {
  const auto& pages = domains_.Pages(domain);
  out->insert(out->end(), pages.begin(), pages.end());
  return Status::OK();
}

size_t HuffmanRepr::resident_memory() const {
  return data_.size() + bit_offsets_.size() * sizeof(uint64_t) +
         code_.MemoryUsage() + domains_.MemoryUsage();
}

}  // namespace wg
