#include "repr/uncompressed_repr.h"

#include <cstring>

#include "obs/trace.h"
#include "util/coding.h"

namespace wg {

namespace {

// The index file holds one fixed 8-byte offset per page, plus a final
// end-of-data sentinel, so the extent of page p's record is
// [offset[p], offset[p+1]).
constexpr size_t kIndexEntry = 8;

}  // namespace

Result<std::unique_ptr<UncompressedFileRepr>> UncompressedFileRepr::Build(
    const WebGraph& graph, const std::string& path, Options options) {
  std::unique_ptr<UncompressedFileRepr> repr(new UncompressedFileRepr());
  repr->options_ = options;
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path + ".idx"));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  repr->file_ = std::move(file).value();
  auto index_file = RandomAccessFile::Open(path + ".idx");
  if (!index_file.ok()) return index_file.status();
  repr->index_file_ = std::move(index_file).value();

  // Stream the adjacency lists out in page order, recording offsets.
  std::string buffer;
  std::string index_buffer;
  uint64_t offset = 0;
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    PutFixed64(&index_buffer, offset);
    auto links = graph.OutLinks(p);
    PutFixed32(&buffer, static_cast<uint32_t>(links.size()));
    for (PageId q : links) PutFixed32(&buffer, q);
    offset += 4 + 4 * links.size();
    if (buffer.size() >= (1 << 20)) {
      WG_RETURN_IF_ERROR(repr->file_->Append(buffer.data(), buffer.size()));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    WG_RETURN_IF_ERROR(repr->file_->Append(buffer.data(), buffer.size()));
  }
  PutFixed64(&index_buffer, offset);
  WG_RETURN_IF_ERROR(
      repr->index_file_->Append(index_buffer.data(), index_buffer.size()));
  repr->file_bytes_ = offset;
  repr->num_edges_ = graph.num_edges();
  repr->num_pages_ = graph.num_pages();
  repr->domains_ = DomainIndex(graph);

  UncompressedFileRepr* raw = repr.get();
  repr->cache_ = std::make_unique<ByteCache>(
      options.buffer_bytes - options.buffer_bytes / 5,
      [raw](uint32_t block, std::vector<uint8_t>* blob) {
        return raw->LoadBlock(block, blob);
      });
  repr->index_cache_ = std::make_unique<ByteCache>(
      options.buffer_bytes / 5,
      [raw](uint32_t block, std::vector<uint8_t>* blob) {
        return raw->LoadIndexBlock(block, blob);
      });
  repr->RegisterStats("uncompressed");
  return repr;
}

Status UncompressedFileRepr::LoadBlock(uint32_t block,
                                       std::vector<uint8_t>* blob) {
  uint64_t start = static_cast<uint64_t>(block) * options_.block_bytes;
  uint64_t len = std::min<uint64_t>(options_.block_bytes, file_bytes_ - start);
  blob->resize(len);
  WG_RETURN_IF_ERROR(
      file_->Read(start, len, reinterpret_cast<char*>(blob->data())));
  stats_.disk_reads += 1;
  stats_.bytes_read += len;
  disk_tracker_.Absorb(file_->seek_ops(), file_->transferred_bytes(),
                       &stats_);
  return Status::OK();
}

Status UncompressedFileRepr::LoadIndexBlock(uint32_t block,
                                            std::vector<uint8_t>* blob) {
  uint64_t start = static_cast<uint64_t>(block) * options_.block_bytes;
  uint64_t len =
      std::min<uint64_t>(options_.block_bytes, index_file_->size() - start);
  blob->resize(len);
  WG_RETURN_IF_ERROR(
      index_file_->Read(start, len, reinterpret_cast<char*>(blob->data())));
  stats_.disk_reads += 1;
  stats_.bytes_read += len;
  index_tracker_.Absorb(index_file_->seek_ops(),
                        index_file_->transferred_bytes(), &stats_);
  return Status::OK();
}

Status UncompressedFileRepr::LookupOffsets(PageId p, uint64_t* begin,
                                           uint64_t* end) {
  uint64_t entries[2];
  std::vector<uint8_t> scratch;
  for (int i = 0; i < 2; ++i) {
    uint64_t byte_pos = static_cast<uint64_t>(p + i) * kIndexEntry;
    uint32_t block = static_cast<uint32_t>(byte_pos / options_.block_bytes);
    WG_ASSIGN_OR_RETURN(const std::vector<uint8_t>* blob,
                        index_cache_->Get(block, &scratch));
    uint64_t off = byte_pos -
                   static_cast<uint64_t>(block) * options_.block_bytes;
    // Entries are 8-byte aligned within power-of-two blocks, so an entry
    // never straddles a block boundary.
    entries[i] = DecodeFixed64(
        reinterpret_cast<const char*>(blob->data()) + off);
  }
  *begin = entries[0];
  *end = entries[1];
  return Status::OK();
}

// Per-cursor scratch: the assembled record bytes and the decoded id array
// are reused across Links() calls, so a multi-page visit allocates only
// until the scratch reaches the largest list seen.
class UncompressedFileRepr::Cursor : public AdjacencyCursor {
 public:
  explicit Cursor(UncompressedFileRepr* repr) : repr_(repr) {}

  Status Links(PageId p, LinkView* view) override {
    if (p >= repr_->num_pages_) {
      return Status::OutOfRange("page id out of range");
    }
    obs::Span span("uncompressed.get_links", "repr");
    span.AddArg("page", p);
    ReprStats& stats = repr_->stats_;
    ++stats.adjacency_requests;
    uint64_t begin, end;
    WG_RETURN_IF_ERROR(repr_->LookupOffsets(p, &begin, &end));
    if (end < begin || end > repr_->file_bytes_) {
      return Status::Corruption("uncompressed: bad index entry");
    }
    // Assemble the record bytes from one or more cached blocks.
    const size_t block_bytes = repr_->options_.block_bytes;
    record_.clear();
    record_.reserve(end - begin);
    uint64_t pos = begin;
    while (pos < end) {
      uint32_t block = static_cast<uint32_t>(pos / block_bytes);
      uint64_t block_start = static_cast<uint64_t>(block) * block_bytes;
      WG_ASSIGN_OR_RETURN(const std::vector<uint8_t>* blob,
                          repr_->cache_->Get(block, &block_scratch_));
      uint64_t off = pos - block_start;
      uint64_t take = std::min(end - pos, blob->size() - off);
      record_.append(reinterpret_cast<const char*>(blob->data()) + off, take);
      pos += take;
    }
    uint32_t count = DecodeFixed32(record_.data());
    if (record_.size() != 4 + 4 * static_cast<size_t>(count)) {
      return Status::Corruption("uncompressed: bad record");
    }
    links_.clear();
    links_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      links_.push_back(DecodeFixed32(record_.data() + 4 + 4 * i));
    }
    stats.edges_returned += count;
    stats.cache_hits =
        repr_->cache_->hits() + repr_->index_cache_->hits();
    stats.cache_misses =
        repr_->cache_->misses() + repr_->index_cache_->misses();
    *view = LinkView(links_.data(), links_.size());
    return Status::OK();
  }

 private:
  UncompressedFileRepr* repr_;
  std::vector<uint8_t> block_scratch_;
  std::string record_;
  std::vector<PageId> links_;
};

std::unique_ptr<AdjacencyCursor> UncompressedFileRepr::NewCursor() {
  return std::make_unique<Cursor>(this);
}

Status UncompressedFileRepr::PagesInDomain(const std::string& domain,
                                           std::vector<PageId>* out) {
  const auto& pages = domains_.Pages(domain);
  out->insert(out->end(), pages.begin(), pages.end());
  return Status::OK();
}

size_t UncompressedFileRepr::resident_memory() const {
  return domains_.MemoryUsage() + cache_->bytes_used() +
         index_cache_->bytes_used();
}

}  // namespace wg
