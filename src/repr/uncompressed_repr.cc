#include "repr/uncompressed_repr.h"

#include <cstring>

#include "obs/trace.h"
#include "util/coding.h"

namespace wg {

namespace {

// The index file holds one fixed 8-byte offset per page, plus a final
// end-of-data sentinel, so the extent of page p's record is
// [offset[p], offset[p+1]).
constexpr size_t kIndexEntry = 8;

}  // namespace

Result<std::unique_ptr<UncompressedFileRepr>> UncompressedFileRepr::Build(
    const WebGraph& graph, const std::string& path, Options options) {
  std::unique_ptr<UncompressedFileRepr> repr(new UncompressedFileRepr());
  repr->options_ = options;
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path + ".idx"));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  repr->file_ = std::move(file).value();
  auto index_file = RandomAccessFile::Open(path + ".idx");
  if (!index_file.ok()) return index_file.status();
  repr->index_file_ = std::move(index_file).value();

  // Stream the adjacency lists out in page order, recording offsets.
  std::string buffer;
  std::string index_buffer;
  uint64_t offset = 0;
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    PutFixed64(&index_buffer, offset);
    auto links = graph.OutLinks(p);
    PutFixed32(&buffer, static_cast<uint32_t>(links.size()));
    for (PageId q : links) PutFixed32(&buffer, q);
    offset += 4 + 4 * links.size();
    if (buffer.size() >= (1 << 20)) {
      WG_RETURN_IF_ERROR(repr->file_->Append(buffer.data(), buffer.size()));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    WG_RETURN_IF_ERROR(repr->file_->Append(buffer.data(), buffer.size()));
  }
  PutFixed64(&index_buffer, offset);
  WG_RETURN_IF_ERROR(
      repr->index_file_->Append(index_buffer.data(), index_buffer.size()));
  repr->file_bytes_ = offset;
  repr->num_edges_ = graph.num_edges();
  repr->num_pages_ = graph.num_pages();
  repr->domains_ = DomainIndex(graph);

  UncompressedFileRepr* raw = repr.get();
  repr->cache_ = std::make_unique<ByteCache>(
      options.buffer_bytes - options.buffer_bytes / 5,
      [raw](uint32_t block, std::vector<uint8_t>* blob) {
        return raw->LoadBlock(block, blob);
      });
  repr->index_cache_ = std::make_unique<ByteCache>(
      options.buffer_bytes / 5,
      [raw](uint32_t block, std::vector<uint8_t>* blob) {
        return raw->LoadIndexBlock(block, blob);
      });
  repr->RegisterStats("uncompressed");
  return repr;
}

Status UncompressedFileRepr::LoadBlock(uint32_t block,
                                       std::vector<uint8_t>* blob) {
  uint64_t start = static_cast<uint64_t>(block) * options_.block_bytes;
  uint64_t len = std::min<uint64_t>(options_.block_bytes, file_bytes_ - start);
  blob->resize(len);
  WG_RETURN_IF_ERROR(
      file_->Read(start, len, reinterpret_cast<char*>(blob->data())));
  stats_.disk_reads += 1;
  stats_.bytes_read += len;
  disk_tracker_.Absorb(file_->seek_ops(), file_->transferred_bytes(),
                       &stats_);
  return Status::OK();
}

Status UncompressedFileRepr::LoadIndexBlock(uint32_t block,
                                            std::vector<uint8_t>* blob) {
  uint64_t start = static_cast<uint64_t>(block) * options_.block_bytes;
  uint64_t len =
      std::min<uint64_t>(options_.block_bytes, index_file_->size() - start);
  blob->resize(len);
  WG_RETURN_IF_ERROR(
      index_file_->Read(start, len, reinterpret_cast<char*>(blob->data())));
  stats_.disk_reads += 1;
  stats_.bytes_read += len;
  index_tracker_.Absorb(index_file_->seek_ops(),
                        index_file_->transferred_bytes(), &stats_);
  return Status::OK();
}

Status UncompressedFileRepr::LookupOffsets(PageId p, uint64_t* begin,
                                           uint64_t* end) {
  uint64_t entries[2];
  std::vector<uint8_t> scratch;
  for (int i = 0; i < 2; ++i) {
    uint64_t byte_pos = static_cast<uint64_t>(p + i) * kIndexEntry;
    uint32_t block = static_cast<uint32_t>(byte_pos / options_.block_bytes);
    WG_ASSIGN_OR_RETURN(const std::vector<uint8_t>* blob,
                        index_cache_->Get(block, &scratch));
    uint64_t off = byte_pos -
                   static_cast<uint64_t>(block) * options_.block_bytes;
    // Entries are 8-byte aligned within power-of-two blocks, so an entry
    // never straddles a block boundary.
    entries[i] = DecodeFixed64(
        reinterpret_cast<const char*>(blob->data()) + off);
  }
  *begin = entries[0];
  *end = entries[1];
  return Status::OK();
}

Status UncompressedFileRepr::GetLinks(PageId p, std::vector<PageId>* out) {
  if (p >= num_pages_) {
    return Status::OutOfRange("page id out of range");
  }
  obs::Span span("uncompressed.get_links", "repr");
  span.AddArg("page", p);
  ++stats_.adjacency_requests;
  uint64_t begin, end;
  WG_RETURN_IF_ERROR(LookupOffsets(p, &begin, &end));
  if (end < begin || end > file_bytes_) {
    return Status::Corruption("uncompressed: bad index entry");
  }
  // Assemble the record bytes from one or more cached blocks.
  std::string record;
  record.reserve(end - begin);
  uint64_t pos = begin;
  std::vector<uint8_t> scratch;
  while (pos < end) {
    uint32_t block = static_cast<uint32_t>(pos / options_.block_bytes);
    uint64_t block_start = static_cast<uint64_t>(block) * options_.block_bytes;
    WG_ASSIGN_OR_RETURN(const std::vector<uint8_t>* blob,
                        cache_->Get(block, &scratch));
    uint64_t off = pos - block_start;
    uint64_t take = std::min(end - pos, blob->size() - off);
    record.append(reinterpret_cast<const char*>(blob->data()) + off, take);
    pos += take;
  }
  uint32_t count = DecodeFixed32(record.data());
  if (record.size() != 4 + 4 * static_cast<size_t>(count)) {
    return Status::Corruption("uncompressed: bad record");
  }
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(DecodeFixed32(record.data() + 4 + 4 * i));
  }
  stats_.edges_returned += count;
  stats_.cache_hits = cache_->hits() + index_cache_->hits();
  stats_.cache_misses = cache_->misses() + index_cache_->misses();
  return Status::OK();
}

Status UncompressedFileRepr::PagesInDomain(const std::string& domain,
                                           std::vector<PageId>* out) {
  const auto& pages = domains_.Pages(domain);
  out->insert(out->end(), pages.begin(), pages.end());
  return Status::OK();
}

size_t UncompressedFileRepr::resident_memory() const {
  return domains_.MemoryUsage() + cache_->bytes_used() +
         index_cache_->bytes_used();
}

}  // namespace wg
