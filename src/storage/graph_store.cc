#include "storage/graph_store.h"

#include <cstdio>
#include <cstring>

#include "storage/integrity.h"
#include "storage/sigbus_guard.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace wg {

namespace {

std::string BlobErrorDetail(const char* what, uint32_t id, uint32_t file_index,
                            uint64_t offset, uint32_t length) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "graph store: %s: blob %u (file %u offset %llu length %u)",
                what, id, file_index,
                static_cast<unsigned long long>(offset), length);
  return buf;
}

}  // namespace

Result<std::unique_ptr<GraphStore>> GraphStore::Create(std::string base_path,
                                                       Options options) {
  std::unique_ptr<GraphStore> store(
      new GraphStore(std::move(base_path), options));
  WG_RETURN_IF_ERROR(store->OpenNextFile());
  return store;
}

void GraphStore::AddFileSlot() {
  quarantined_.push_back(std::make_unique<std::atomic<bool>>(false));
}

Status GraphStore::OpenNextFile() {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%03zu", files_.size());
  std::string path = base_path_ + suffix;
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  files_.push_back(std::move(file).value());
  AddFileSlot();
  return Status::OK();
}

Result<uint32_t> GraphStore::Append(const std::vector<uint8_t>& blob) {
  if (read_only_ || mapped_) {
    return Status::InvalidArgument("graph store: attached read-only");
  }
  RandomAccessFile* file = files_.back().get();
  if (file->size() > 0 &&
      file->size() + blob.size() > options_.max_file_size) {
    WG_RETURN_IF_ERROR(OpenNextFile());
    file = files_.back().get();
  }
  BlobRef ref;
  ref.file_index = static_cast<uint32_t>(files_.size() - 1);
  ref.offset = file->size();
  ref.length = static_cast<uint32_t>(blob.size());
  ref.crc = blob.empty() ? 0 : Crc32(blob.data(), blob.size());
  if (!blob.empty()) {
    WG_RETURN_IF_ERROR(
        file->Append(reinterpret_cast<const char*>(blob.data()), blob.size()));
  }
  directory_.push_back(ref);
  total_bytes_ += blob.size();
  return static_cast<uint32_t>(directory_.size() - 1);
}

Status GraphStore::ReadBlob(uint32_t id, std::vector<uint8_t>* out) const {
  if (id >= directory_.size()) {
    return Status::OutOfRange("graph store: blob id out of range");
  }
  const BlobRef& ref = directory_[id];
  out->resize(ref.length);
  if (ref.length == 0) return Status::OK();
  if (mapped_ && !FileQuarantined(ref.file_index)) {
    // Copy out of the mapping; still cheaper than a pread syscall, and
    // callers that can tolerate a borrowed span use ReadBlobSpan instead.
    Status verified = options_.verify_checksums
                          ? EnsureMappedBlobVerified(id, ref)
                          : Status::OK();
    if (verified.ok()) {
      const uint8_t* base = files_[ref.file_index]->mapped_data();
      std::memcpy(out->data(), base + ref.offset, ref.length);
      mapped_reads_.fetch_add(1, std::memory_order_relaxed);
      mapped_bytes_.fetch_add(ref.length, std::memory_order_relaxed);
      return Status::OK();
    }
    if (verified.code() != StatusCode::kUnavailable) return verified;
    // Unavailable = the file was just quarantined; retry through pread.
  }
  WG_RETURN_IF_ERROR(files_[ref.file_index]->Read(
      ref.offset, ref.length, reinterpret_cast<char*>(out->data())));
  if (options_.verify_checksums && ref.crc != 0 &&
      Crc32(out->data(), ref.length) != ref.crc) {
    ++IntegrityCounters::Get().checksum_failures;
    return Status::Corruption(BlobErrorDetail(
        "checksum mismatch", id, ref.file_index, ref.offset, ref.length));
  }
  return Status::OK();
}

Status GraphStore::MapForRead() {
  if (mapped_) return Status::OK();
  // Directory-recorded extent each file must cover. A file shorter than
  // its extents (truncated behind our back, or a directory/manifest that
  // does not match the bytes) must not be mapped: spans into the missing
  // tail would SIGBUS on first touch. Such files serve via pread, where
  // every read is bounds-checked by the kernel and CRC-verified.
  std::vector<uint64_t> required(files_.size(), 0);
  for (const BlobRef& ref : directory_) {
    uint64_t end = ref.offset + ref.length;
    if (end > required[ref.file_index]) required[ref.file_index] = end;
  }
  for (size_t f = 0; f < files_.size(); ++f) {
    auto on_disk = files_[f]->CurrentSize();
    if (!on_disk.ok() || on_disk.value() < required[f]) {
      QuarantineFile(static_cast<uint32_t>(f));
      continue;
    }
    if (!files_[f]->MapReadOnly().ok()) {
      QuarantineFile(static_cast<uint32_t>(f));
    }
  }
  readahead_edge_.clear();
  readahead_edge_.reserve(files_.size());
  for (size_t f = 0; f < files_.size(); ++f) {
    readahead_edge_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  size_t words = (directory_.size() + 63) / 64;
  verified_ok_.reset(new std::atomic<uint64_t>[words]());
  verified_bad_.reset(new std::atomic<uint64_t>[words]());
  mapped_ = true;
  return Status::OK();
}

void GraphStore::QuarantineFile(uint32_t file_index) const {
  if (!quarantined_[file_index]->exchange(true, std::memory_order_acq_rel)) {
    ++IntegrityCounters::Get().mmap_fallbacks;
  }
}

Status GraphStore::EnsureMappedBlobVerified(uint32_t id,
                                            const BlobRef& ref) const {
  if (ref.length == 0) return Status::OK();
  std::atomic<uint64_t>& ok_word = verified_ok_[id / 64];
  uint64_t bit = 1ULL << (id % 64);
  if (ok_word.load(std::memory_order_relaxed) & bit) return Status::OK();
  if (verified_bad_[id / 64].load(std::memory_order_relaxed) & bit) {
    return Status::Corruption(BlobErrorDetail(
        "checksum mismatch", id, ref.file_index, ref.offset, ref.length));
  }
  const uint8_t* base = files_[ref.file_index]->mapped_data();
  uint32_t actual = 0;
  {
    // First touch of this blob through the mapping: the pages may be
    // beyond the file's real end (lost sectors, truncation after map), in
    // which case the CRC pass itself SIGBUSes. Catch it, demote the whole
    // file to pread, and fail just this read.
    SigbusGuard guard;
    if (sigsetjmp(guard.jump_buffer(), 1) != 0) {
      ++IntegrityCounters::Get().sigbus_faults;
      QuarantineFile(ref.file_index);
      return Status::Unavailable(BlobErrorDetail(
          "SIGBUS on mapped read; file quarantined to pread", id,
          ref.file_index, ref.offset, ref.length));
    }
    actual = Crc32(base + ref.offset, ref.length);
  }
  if (ref.crc != 0 && actual != ref.crc) {
    verified_bad_[id / 64].fetch_or(bit, std::memory_order_relaxed);
    ++IntegrityCounters::Get().checksum_failures;
    return Status::Corruption(BlobErrorDetail(
        "checksum mismatch", id, ref.file_index, ref.offset, ref.length));
  }
  ok_word.fetch_or(bit, std::memory_order_relaxed);
  return Status::OK();
}

Status GraphStore::VerifyBlob(uint32_t id) const {
  if (id >= directory_.size()) {
    return Status::OutOfRange("graph store: blob id out of range");
  }
  const BlobRef& ref = directory_[id];
  if (ref.length == 0) return Status::OK();
  if (ref.offset + ref.length > files_[ref.file_index]->size()) {
    return Status::Corruption(BlobErrorDetail(
        "blob outside file", id, ref.file_index, ref.offset, ref.length));
  }
  std::vector<uint8_t> buffer(ref.length);
  WG_RETURN_IF_ERROR(files_[ref.file_index]->Read(
      ref.offset, ref.length, reinterpret_cast<char*>(buffer.data())));
  if (ref.crc != 0 && Crc32(buffer.data(), ref.length) != ref.crc) {
    return Status::Corruption(BlobErrorDetail(
        "checksum mismatch", id, ref.file_index, ref.offset, ref.length));
  }
  return Status::OK();
}

Status GraphStore::SyncAll() const {
  for (const auto& file : files_) {
    WG_RETURN_IF_ERROR(file->Sync());
  }
  return Status::OK();
}

Status GraphStore::ReadBlobSpan(uint32_t id, BlobSpan* span) const {
  if (id >= directory_.size()) {
    return Status::OutOfRange("graph store: blob id out of range");
  }
  if (!mapped_) {
    return Status::InvalidArgument("graph store: not memory-mapped");
  }
  const BlobRef& ref = directory_[id];
  if (FileQuarantined(ref.file_index)) {
    return Status::Unavailable(BlobErrorDetail(
        "file quarantined to pread", id, ref.file_index, ref.offset,
        ref.length));
  }
  if (options_.verify_checksums && ref.length > 0) {
    WG_RETURN_IF_ERROR(EnsureMappedBlobVerified(id, ref));
  }
  const RandomAccessFile& file = *files_[ref.file_index];
  span->data = ref.length == 0 ? nullptr : file.mapped_data() + ref.offset;
  span->length = ref.length;
  mapped_reads_.fetch_add(1, std::memory_order_relaxed);
  mapped_bytes_.fetch_add(ref.length, std::memory_order_relaxed);
  // Readahead window: the first read past the previous window's edge asks
  // the kernel for the next options_.readahead_bytes in one go -- the
  // layout places this blob's section right here, so the faults the
  // decode is about to take are batched instead of page-by-page.
  if (options_.readahead_bytes > 0 && ref.length > 0) {
    // The current window covers [edge - readahead_bytes, edge); a read
    // ending outside it (past the edge, or a jump back to an earlier
    // region) opens a fresh window at the read's start.
    std::atomic<uint64_t>& edge = *readahead_edge_[ref.file_index];
    uint64_t end = ref.offset + ref.length;
    uint64_t seen = edge.load(std::memory_order_relaxed);
    uint64_t window_start =
        seen > options_.readahead_bytes ? seen - options_.readahead_bytes : 0;
    if (seen == 0 || end > seen || end < window_start) {
      edge.store(ref.offset + options_.readahead_bytes,
                 std::memory_order_relaxed);
      file.Advise(ref.offset, options_.readahead_bytes,
                  RandomAccessFile::Advice::kWillNeed);
    }
  }
  return Status::OK();
}

void GraphStore::AdviseBlobs(uint32_t first, uint32_t last,
                             RandomAccessFile::Advice advice) const {
  if (!mapped_ || first > last || last >= directory_.size()) return;
  uint32_t id = first;
  while (id <= last) {
    uint32_t file_index = directory_[id].file_index;
    uint32_t run_end = id;
    while (run_end < last && directory_[run_end + 1].file_index == file_index &&
           directory_[run_end + 1].offset ==
               directory_[run_end].offset + directory_[run_end].length) {
      ++run_end;
    }
    uint64_t begin = directory_[id].offset;
    uint64_t end = directory_[run_end].offset + directory_[run_end].length;
    if (end > begin) {
      files_[file_index]->Advise(begin, end - begin, advice);
    }
    id = run_end + 1;
  }
}

void GraphStore::EvictFromPageCache() const {
  for (const auto& file : files_) file->EvictFromPageCache();
  for (const auto& edge : readahead_edge_) {
    edge->store(0, std::memory_order_relaxed);
  }
}

Status GraphStore::ReadBlobRange(uint32_t first, uint32_t last,
                                 std::vector<std::vector<uint8_t>>* out) const {
  if (first > last || last >= directory_.size()) {
    return Status::OutOfRange("graph store: bad blob range");
  }
  out->clear();
  out->resize(last - first + 1);
  uint32_t id = first;
  while (id <= last) {
    // Greedily take the run of blobs laid out back to back in one file.
    // Manifest-composed stores (version layer) can place consecutive ids
    // in different files or at non-adjacent offsets -- such neighbors get
    // their own read instead of one mis-sized span.
    uint32_t file_index = directory_[id].file_index;
    uint32_t run_end = id;
    while (run_end < last &&
           directory_[run_end + 1].file_index == file_index &&
           directory_[run_end + 1].offset ==
               directory_[run_end].offset + directory_[run_end].length) {
      ++run_end;
    }
    uint64_t begin = directory_[id].offset;
    uint64_t end = directory_[run_end].offset + directory_[run_end].length;
    if (mapped_ && !FileQuarantined(file_index)) {
      Status verified;
      if (options_.verify_checksums) {
        for (uint32_t b = id; b <= run_end && verified.ok(); ++b) {
          verified = EnsureMappedBlobVerified(b, directory_[b]);
        }
      }
      if (verified.ok()) {
        const uint8_t* base = files_[file_index]->mapped_data();
        files_[file_index]->Advise(begin, end - begin,
                                   RandomAccessFile::Advice::kWillNeed);
        for (uint32_t b = id; b <= run_end; ++b) {
          const BlobRef& ref = directory_[b];
          (*out)[b - first].assign(base + ref.offset,
                                   base + ref.offset + ref.length);
        }
        mapped_reads_.fetch_add(1, std::memory_order_relaxed);
        mapped_bytes_.fetch_add(end - begin, std::memory_order_relaxed);
        id = run_end + 1;
        continue;
      }
      if (verified.code() != StatusCode::kUnavailable) return verified;
      // File was quarantined mid-run: serve this run through pread.
    }
    std::vector<char> buffer(end - begin);
    if (!buffer.empty()) {
      WG_RETURN_IF_ERROR(
          files_[file_index]->Read(begin, buffer.size(), buffer.data()));
    }
    for (uint32_t b = id; b <= run_end; ++b) {
      const BlobRef& ref = directory_[b];
      auto* dst = &(*out)[b - first];
      dst->assign(buffer.begin() + (ref.offset - begin),
                  buffer.begin() + (ref.offset - begin) + ref.length);
      if (options_.verify_checksums && ref.crc != 0 && ref.length > 0 &&
          Crc32(dst->data(), dst->size()) != ref.crc) {
        ++IntegrityCounters::Get().checksum_failures;
        return Status::Corruption(BlobErrorDetail(
            "checksum mismatch", b, ref.file_index, ref.offset, ref.length));
      }
    }
    id = run_end + 1;
  }
  return Status::OK();
}

void GraphStore::SerializeDirectory(std::string* payload) const {
  PutVarint64(payload, options_.max_file_size);
  PutVarint64(payload, files_.size());
  PutVarint64(payload, directory_.size());
  for (const BlobRef& ref : directory_) {
    PutVarint32(payload, ref.file_index);
    PutVarint64(payload, ref.offset);
    PutVarint32(payload, ref.length);
    PutVarint32(payload, ref.crc);
  }
}

Result<std::unique_ptr<GraphStore>> GraphStore::OpenExisting(
    std::string base_path, Options options, SerialCursor* cursor) {
  std::unique_ptr<GraphStore> store(
      new GraphStore(std::move(base_path), options));
  store->read_only_ = true;
  uint64_t max_file_size = 0, num_files = 0, num_blobs = 0;
  if (!cursor->ReadVarint64(&max_file_size) ||
      !cursor->ReadVarint64(&num_files) ||
      !cursor->ReadVarint64(&num_blobs)) {
    return Status::Corruption("graph store: bad directory header");
  }
  store->options_.max_file_size = max_file_size;
  for (uint64_t f = 0; f < num_files; ++f) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".%03llu",
                  static_cast<unsigned long long>(f));
    auto file = RandomAccessFile::Open(store->base_path_ + suffix);
    if (!file.ok()) return file.status();
    store->files_.push_back(std::move(file).value());
    store->AddFileSlot();
  }
  store->directory_.reserve(num_blobs);
  for (uint64_t b = 0; b < num_blobs; ++b) {
    BlobRef ref;
    uint64_t offset = 0;
    if (!cursor->ReadVarint32(&ref.file_index) ||
        !cursor->ReadVarint64(&offset) || !cursor->ReadVarint32(&ref.length) ||
        !cursor->ReadVarint32(&ref.crc) ||
        ref.file_index >= store->files_.size()) {
      return Status::Corruption("graph store: bad directory entry");
    }
    ref.offset = offset;
    if (ref.offset + ref.length > store->files_[ref.file_index]->size()) {
      return Status::Corruption("graph store: blob outside file");
    }
    store->directory_.push_back(ref);
    store->total_bytes_ += ref.length;
  }
  if (store->options_.mmap) {
    WG_RETURN_IF_ERROR(store->MapForRead());
  }
  return store;
}

Result<std::unique_ptr<GraphStore>> GraphStore::OpenFiles(
    const std::vector<std::string>& paths,
    std::vector<BlobLocation> directory, Options options) {
  std::unique_ptr<GraphStore> store(new GraphStore("", options));
  store->read_only_ = true;
  for (const std::string& path : paths) {
    auto file = RandomAccessFile::Open(path);
    if (!file.ok()) return file.status();
    store->files_.push_back(std::move(file).value());
    store->AddFileSlot();
  }
  store->directory_.reserve(directory.size());
  for (const BlobLocation& loc : directory) {
    if (loc.file_index >= store->files_.size()) {
      return Status::Corruption("graph store: blob references unknown file");
    }
    if (loc.offset + loc.length > store->files_[loc.file_index]->size()) {
      return Status::Corruption("graph store: blob outside file");
    }
    store->directory_.push_back(
        {loc.file_index, loc.length, loc.offset, loc.crc});
    store->total_bytes_ += loc.length;
  }
  if (options.mmap) {
    WG_RETURN_IF_ERROR(store->MapForRead());
  }
  return store;
}

Result<std::unique_ptr<GraphStore>> GraphStore::OpenFiles(
    const std::vector<std::string>& paths,
    std::vector<BlobLocation> directory) {
  return OpenFiles(paths, std::move(directory), Options());
}

uint64_t GraphStore::read_ops() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f->read_ops();
  return total;
}

uint64_t GraphStore::seek_ops() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f->seek_ops();
  return total;
}

uint64_t GraphStore::transferred_bytes() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f->transferred_bytes();
  return total;
}

}  // namespace wg
