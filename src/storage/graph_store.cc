#include "storage/graph_store.h"

#include <cstdio>

#include "util/coding.h"

namespace wg {

Result<std::unique_ptr<GraphStore>> GraphStore::Create(std::string base_path,
                                                       Options options) {
  std::unique_ptr<GraphStore> store(
      new GraphStore(std::move(base_path), options));
  WG_RETURN_IF_ERROR(store->OpenNextFile());
  return store;
}

Status GraphStore::OpenNextFile() {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%03zu", files_.size());
  std::string path = base_path_ + suffix;
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  files_.push_back(std::move(file).value());
  return Status::OK();
}

Result<uint32_t> GraphStore::Append(const std::vector<uint8_t>& blob) {
  if (read_only_) {
    return Status::InvalidArgument("graph store: attached read-only");
  }
  RandomAccessFile* file = files_.back().get();
  if (file->size() > 0 &&
      file->size() + blob.size() > options_.max_file_size) {
    WG_RETURN_IF_ERROR(OpenNextFile());
    file = files_.back().get();
  }
  BlobRef ref;
  ref.file_index = static_cast<uint32_t>(files_.size() - 1);
  ref.offset = file->size();
  ref.length = static_cast<uint32_t>(blob.size());
  if (!blob.empty()) {
    WG_RETURN_IF_ERROR(
        file->Append(reinterpret_cast<const char*>(blob.data()), blob.size()));
  }
  directory_.push_back(ref);
  total_bytes_ += blob.size();
  return static_cast<uint32_t>(directory_.size() - 1);
}

Status GraphStore::ReadBlob(uint32_t id, std::vector<uint8_t>* out) const {
  if (id >= directory_.size()) {
    return Status::OutOfRange("graph store: blob id out of range");
  }
  const BlobRef& ref = directory_[id];
  out->resize(ref.length);
  if (ref.length == 0) return Status::OK();
  return files_[ref.file_index]->Read(
      ref.offset, ref.length, reinterpret_cast<char*>(out->data()));
}

Status GraphStore::ReadBlobRange(uint32_t first, uint32_t last,
                                 std::vector<std::vector<uint8_t>>* out) const {
  if (first > last || last >= directory_.size()) {
    return Status::OutOfRange("graph store: bad blob range");
  }
  out->clear();
  out->resize(last - first + 1);
  uint32_t id = first;
  while (id <= last) {
    // Greedily take the run of blobs laid out back to back in one file.
    // Manifest-composed stores (version layer) can place consecutive ids
    // in different files or at non-adjacent offsets -- such neighbors get
    // their own read instead of one mis-sized span.
    uint32_t file_index = directory_[id].file_index;
    uint32_t run_end = id;
    while (run_end < last &&
           directory_[run_end + 1].file_index == file_index &&
           directory_[run_end + 1].offset ==
               directory_[run_end].offset + directory_[run_end].length) {
      ++run_end;
    }
    uint64_t begin = directory_[id].offset;
    uint64_t end = directory_[run_end].offset + directory_[run_end].length;
    std::vector<char> buffer(end - begin);
    if (!buffer.empty()) {
      WG_RETURN_IF_ERROR(
          files_[file_index]->Read(begin, buffer.size(), buffer.data()));
    }
    for (uint32_t b = id; b <= run_end; ++b) {
      const BlobRef& ref = directory_[b];
      auto* dst = &(*out)[b - first];
      dst->assign(buffer.begin() + (ref.offset - begin),
                  buffer.begin() + (ref.offset - begin) + ref.length);
    }
    id = run_end + 1;
  }
  return Status::OK();
}

void GraphStore::SerializeDirectory(std::string* payload) const {
  PutVarint64(payload, options_.max_file_size);
  PutVarint64(payload, files_.size());
  PutVarint64(payload, directory_.size());
  for (const BlobRef& ref : directory_) {
    PutVarint32(payload, ref.file_index);
    PutVarint64(payload, ref.offset);
    PutVarint32(payload, ref.length);
  }
}

Result<std::unique_ptr<GraphStore>> GraphStore::OpenExisting(
    std::string base_path, Options options, SerialCursor* cursor) {
  std::unique_ptr<GraphStore> store(
      new GraphStore(std::move(base_path), options));
  store->read_only_ = true;
  uint64_t max_file_size = 0, num_files = 0, num_blobs = 0;
  if (!cursor->ReadVarint64(&max_file_size) ||
      !cursor->ReadVarint64(&num_files) ||
      !cursor->ReadVarint64(&num_blobs)) {
    return Status::Corruption("graph store: bad directory header");
  }
  store->options_.max_file_size = max_file_size;
  for (uint64_t f = 0; f < num_files; ++f) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".%03llu",
                  static_cast<unsigned long long>(f));
    auto file = RandomAccessFile::Open(store->base_path_ + suffix);
    if (!file.ok()) return file.status();
    store->files_.push_back(std::move(file).value());
  }
  store->directory_.reserve(num_blobs);
  for (uint64_t b = 0; b < num_blobs; ++b) {
    BlobRef ref;
    uint64_t offset = 0;
    if (!cursor->ReadVarint32(&ref.file_index) ||
        !cursor->ReadVarint64(&offset) || !cursor->ReadVarint32(&ref.length) ||
        ref.file_index >= store->files_.size()) {
      return Status::Corruption("graph store: bad directory entry");
    }
    ref.offset = offset;
    if (ref.offset + ref.length > store->files_[ref.file_index]->size()) {
      return Status::Corruption("graph store: blob outside file");
    }
    store->directory_.push_back(ref);
    store->total_bytes_ += ref.length;
  }
  return store;
}

Result<std::unique_ptr<GraphStore>> GraphStore::OpenFiles(
    const std::vector<std::string>& paths,
    std::vector<BlobLocation> directory) {
  std::unique_ptr<GraphStore> store(new GraphStore("", Options()));
  store->read_only_ = true;
  for (const std::string& path : paths) {
    auto file = RandomAccessFile::Open(path);
    if (!file.ok()) return file.status();
    store->files_.push_back(std::move(file).value());
  }
  store->directory_.reserve(directory.size());
  for (const BlobLocation& loc : directory) {
    if (loc.file_index >= store->files_.size()) {
      return Status::Corruption("graph store: blob references unknown file");
    }
    if (loc.offset + loc.length > store->files_[loc.file_index]->size()) {
      return Status::Corruption("graph store: blob outside file");
    }
    store->directory_.push_back({loc.file_index, loc.length, loc.offset});
    store->total_bytes_ += loc.length;
  }
  return store;
}

uint64_t GraphStore::read_ops() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f->read_ops();
  return total;
}

uint64_t GraphStore::seek_ops() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f->seek_ops();
  return total;
}

uint64_t GraphStore::transferred_bytes() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f->transferred_bytes();
  return total;
}

}  // namespace wg
