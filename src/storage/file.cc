#include "storage/file.h"

#include "storage/env.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace wg {

namespace {

// System page size, fetched once (madvise wants page-aligned addresses).
uint64_t PageSize() {
  static const uint64_t size = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

int NativeAdvice(RandomAccessFile::Advice advice) {
  switch (advice) {
    case RandomAccessFile::Advice::kWillNeed:
      return MADV_WILLNEED;
    case RandomAccessFile::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case RandomAccessFile::Advice::kRandom:
      return MADV_RANDOM;
    case RandomAccessFile::Advice::kDontNeed:
      return MADV_DONTNEED;
    case RandomAccessFile::Advice::kNormal:
      break;
  }
  return MADV_NORMAL;
}

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  WG_RETURN_IF_ERROR(Env::Current()->OnOpen(path));
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(
      path, fd, static_cast<uint64_t>(st.st_size)));
}

RandomAccessFile::~RandomAccessFile() {
  if (mapped_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(mapped_), mapped_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> RandomAccessFile::CurrentSize() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat " + path_ + ": " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status RandomAccessFile::MapReadOnly() {
  if (mapped_ != nullptr || size_ == 0) return Status::OK();
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd_, 0);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap " + path_ + ": " + std::strerror(errno));
  }
  mapped_ = static_cast<const uint8_t*>(addr);
  mapped_size_ = size_;
  return Status::OK();
}

void RandomAccessFile::Advise(uint64_t offset, uint64_t length,
                              Advice advice) const {
  if (mapped_ == nullptr || offset >= mapped_size_) return;
  length = std::min(length, mapped_size_ - offset);
  // madvise wants a page-aligned start; widen left to the page boundary.
  uint64_t aligned = offset & ~(PageSize() - 1);
  ::madvise(const_cast<uint8_t*>(mapped_) + aligned,
            length + (offset - aligned), NativeAdvice(advice));
}

void RandomAccessFile::EvictFromPageCache() const {
  if (mapped_ != nullptr) {
    ::madvise(const_cast<uint8_t*>(mapped_), mapped_size_, MADV_DONTNEED);
  }
  if (fd_ >= 0) ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, char* scratch) const {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, scratch + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_ + ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IOError("pread " + path_ + ": short read");
    }
    done += static_cast<size_t>(r);
  }
  WG_RETURN_IF_ERROR(Env::Current()->OnRead(path_, offset, n, scratch));
  ++read_ops_;
  bytes_read_ += n;
  if (offset == last_read_end_) {
    transferred_bytes_ += n;
  } else if (last_read_end_ != UINT64_MAX && offset > last_read_end_ &&
             offset - last_read_end_ <= kNearGap) {
    // Near-sequential: pay the skipped gap as transfer, not a seek.
    transferred_bytes_ += (offset - last_read_end_) + n;
  } else {
    ++seek_ops_;
    transferred_bytes_ += n;
  }
  last_read_end_ = offset + n;
  return Status::OK();
}

Status RandomAccessFile::Write(uint64_t offset, const char* data, size_t n) {
  if (mapped_ != nullptr) {
    return Status::InvalidArgument("write to mmapped file " + path_);
  }
  Env* env = Env::Current();
  size_t allowed = n;
  Status injected = env->OnWrite(path_, offset, n, &allowed);
  size_t done = 0;
  while (done < allowed) {
    ssize_t r = ::pwrite(fd_, data + done, allowed - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (done > 0) env->DidWrite(path_, offset, done);
      return Status::IOError("pwrite " + path_ + ": " + std::strerror(errno));
    }
    done += static_cast<size_t>(r);
  }
  if (done > 0) env->DidWrite(path_, offset, done);
  ++write_ops_;
  if (offset + done > size_) size_ = offset + done;
  WG_RETURN_IF_ERROR(injected);
  return Status::OK();
}

Status RandomAccessFile::Append(const char* data, size_t n) {
  return Write(size_, data, n);
}

Status RandomAccessFile::Sync() {
  Env* env = Env::Current();
  Status injected;
  switch (env->OnSync(path_, &injected)) {
    case Env::SyncAction::kDrop:
      return Status::OK();
    case Env::SyncAction::kFail:
      return injected;
    case Env::SyncAction::kSync:
      break;
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  env->DidSync(path_);
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  WG_RETURN_IF_ERROR(Env::Current()->OnRemove(path));
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  std::string prefix;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      prefix = path.substr(0, i);
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IOError("mkdir " + prefix + ": " +
                               std::strerror(errno));
      }
    }
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  Env* env = Env::Current();
  WG_RETURN_IF_ERROR(env->OnRename(from, to));
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           std::strerror(errno));
  }
  env->DidRename(from, to);
  return Status::OK();
}

Status SyncDirectory(const std::string& path) {
  Env* env = Env::Current();
  Status injected;
  switch (env->OnSyncDir(path, &injected)) {
    case Env::SyncAction::kDrop:
      return Status::OK();
    case Env::SyncAction::kFail:
      return injected;
    case Env::SyncAction::kSync:
      break;
  }
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + path + ": " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status st =
        Status::IOError("fsync dir " + path + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  env->DidSyncDir(path);
  return Status::OK();
}

}  // namespace wg
