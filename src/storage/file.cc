#include "storage/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wg {

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(
      path, fd, static_cast<uint64_t>(st.st_size)));
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, char* scratch) const {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, scratch + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_ + ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IOError("pread " + path_ + ": short read");
    }
    done += static_cast<size_t>(r);
  }
  ++read_ops_;
  bytes_read_ += n;
  if (offset == last_read_end_) {
    transferred_bytes_ += n;
  } else if (last_read_end_ != UINT64_MAX && offset > last_read_end_ &&
             offset - last_read_end_ <= kNearGap) {
    // Near-sequential: pay the skipped gap as transfer, not a seek.
    transferred_bytes_ += (offset - last_read_end_) + n;
  } else {
    ++seek_ops_;
    transferred_bytes_ += n;
  }
  last_read_end_ = offset + n;
  return Status::OK();
}

Status RandomAccessFile::Write(uint64_t offset, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd_, data + done, n - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path_ + ": " + std::strerror(errno));
    }
    done += static_cast<size_t>(r);
  }
  ++write_ops_;
  if (offset + n > size_) size_ = offset + n;
  return Status::OK();
}

Status RandomAccessFile::Append(const char* data, size_t n) {
  return Write(size_, data, n);
}

Status RandomAccessFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  std::string prefix;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      prefix = path.substr(0, i);
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IOError("mkdir " + prefix + ": " +
                               std::strerror(errno));
      }
    }
  }
  return Status::OK();
}

}  // namespace wg
