#ifndef WG_STORAGE_BTREE_H_
#define WG_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/pager.h"
#include "util/status.h"

// A disk-resident B+tree with 64-bit keys and values, built on the shared
// Pager. The relational baseline uses two of these, mirroring the paper's
// PostgreSQL setup:
//   * page-id index:  key = page id,                     value = row id
//   * domain index:   key = (domain id << 32) | page id, value = row id
// The composite domain key turns "all pages of domain D" into a range scan,
// which is exactly how a (domain, page) B-tree behaves in a real RDBMS.
//
// Keys are unique; inserting an existing key overwrites its value. The
// workload is bulk-build then read-only, so deletion is intentionally not
// implemented.

namespace wg {

class BTree {
 public:
  // Creates an empty tree, allocating its root from `pager`. The pager must
  // outlive the tree.
  static Result<std::unique_ptr<BTree>> Create(Pager* pager);

  // Re-attaches to an existing tree rooted at `root`.
  static std::unique_ptr<BTree> Attach(Pager* pager, PageNum root);

  Status Insert(uint64_t key, uint64_t value);

  // Point lookup; sets *found.
  Status Get(uint64_t key, uint64_t* value, bool* found);

  // Forward iteration from the first key >= seek target.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    uint64_t key() const { return key_; }
    uint64_t value() const { return value_; }
    // Advances; on I/O error the iterator becomes invalid and status() is
    // set.
    void Next();
    const Status& status() const { return status_; }

   private:
    friend class BTree;
    void Load();

    BTree* tree_ = nullptr;
    PageNum leaf_ = kInvalidPageNum;
    uint16_t index_ = 0;
    bool valid_ = false;
    uint64_t key_ = 0;
    uint64_t value_ = 0;
    Status status_;
  };

  Result<Iterator> Seek(uint64_t key);

  PageNum root() const { return root_; }
  size_t num_entries() const { return num_entries_; }
  // Height of the tree (1 = just a leaf).
  Result<uint32_t> Height();

 private:
  BTree(Pager* pager, PageNum root) : pager_(pager), root_(root) {}

  struct SplitResult {
    bool split = false;
    uint64_t separator = 0;  // first key of the new right sibling
    PageNum right = kInvalidPageNum;
  };

  Status InsertRecursive(PageNum node, uint64_t key, uint64_t value,
                         SplitResult* out);
  Status FindLeaf(uint64_t key, PageNum* leaf);

  Pager* pager_;
  PageNum root_;
  size_t num_entries_ = 0;
};

}  // namespace wg

#endif  // WG_STORAGE_BTREE_H_
