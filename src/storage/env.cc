#include "storage/env.h"

#include <atomic>

namespace wg {

namespace {

Env* DefaultEnv() {
  static Env* instance = new Env();
  return instance;
}

std::atomic<Env*>& CurrentSlot() {
  static std::atomic<Env*> slot{DefaultEnv()};
  return slot;
}

}  // namespace

Env* Env::Current() { return CurrentSlot().load(std::memory_order_acquire); }

void Env::Install(Env* env) {
  CurrentSlot().store(env != nullptr ? env : DefaultEnv(),
                      std::memory_order_release);
}

Status Env::OnOpen(const std::string&) { return Status::OK(); }

Status Env::OnRead(const std::string&, uint64_t, size_t, char*) {
  return Status::OK();
}

Status Env::OnWrite(const std::string&, uint64_t, size_t, size_t*) {
  return Status::OK();
}

void Env::DidWrite(const std::string&, uint64_t, size_t) {}

Env::SyncAction Env::OnSync(const std::string&, Status*) {
  return SyncAction::kSync;
}

void Env::DidSync(const std::string&) {}

Status Env::OnRename(const std::string&, const std::string&) {
  return Status::OK();
}

void Env::DidRename(const std::string&, const std::string&) {}

Env::SyncAction Env::OnSyncDir(const std::string&, Status*) {
  return SyncAction::kSync;
}

void Env::DidSyncDir(const std::string&) {}

Status Env::OnRemove(const std::string&) { return Status::OK(); }

}  // namespace wg
