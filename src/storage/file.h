#ifndef WG_STORAGE_FILE_H_
#define WG_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

// Thin POSIX file wrapper used by every disk-backed component (pager, graph
// store, uncompressed adjacency files). Counts physical reads/writes so the
// experiments can report I/O alongside time. Every fallible operation
// (open/read/write/sync/rename/dir-sync/remove) consults the installed
// Env (storage/env.h), which lets tests inject disk faults and power cuts
// without touching call sites.
//
// A file can additionally be memory-mapped read-only (MapReadOnly): reads
// then become pointer arithmetic into the page-cache-backed mapping, and
// Advise() exposes madvise so callers can open readahead windows
// (kWillNeed/kSequential) or drop residency (kDontNeed, the cold-read
// benchmark's page-cache eviction).

namespace wg {

class RandomAccessFile {
 public:
  // Opens (creating if needed) `path` for read/write.
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  // Reads exactly `n` bytes at `offset` into `scratch`.
  Status Read(uint64_t offset, size_t n, char* scratch) const;

  // Writes exactly `n` bytes at `offset`.
  Status Write(uint64_t offset, const char* data, size_t n);

  Status Append(const char* data, size_t n);

  Status Sync();

  // Memory-maps the current extent of the file read-only. Writes through
  // this object after mapping are rejected (the mapping would go stale).
  // Safe to call on an empty file (mapped() stays false, data() null).
  // Idempotent.
  Status MapReadOnly();

  bool mapped() const { return mapped_ != nullptr; }
  // Base of the read-only mapping (nullptr when not mapped). Valid for
  // [0, mapped_size()) until the file object is destroyed.
  const uint8_t* mapped_data() const { return mapped_; }
  uint64_t mapped_size() const { return mapped_size_; }

  enum class Advice { kNormal, kWillNeed, kSequential, kRandom, kDontNeed };

  // madvise on the mapped range [offset, offset+length) (clamped and
  // page-aligned internally). No-op when not mapped; advisory only, so
  // failures are swallowed.
  void Advise(uint64_t offset, uint64_t length, Advice advice) const;

  // Asks the kernel to drop this file's page-cache residency (fadvise
  // DONTNEED, plus madvise DONTNEED on the mapping when mapped). Used by
  // cold-read benchmarks; advisory, so best-effort.
  void EvictFromPageCache() const;

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // The file's size on disk right now (fstat), as opposed to size() which
  // tracks the extent recorded at open plus our own writes. The two
  // disagree when another process (or a bad disk) truncated the file
  // behind our back -- exactly what mmap validation must catch.
  Result<uint64_t> CurrentSize() const;

  uint64_t read_ops() const { return read_ops_; }
  uint64_t write_ops() const { return write_ops_; }
  uint64_t bytes_read() const { return bytes_read_; }

  // Disk-model accounting: a read is a "seek" unless it starts at (or
  // within kNearGap bytes after) the end of the previous read; skipped
  // near gaps are charged as transferred bytes. This is what makes the
  // paper's linear disk layout (Section 3.3) pay off: reading an intranode
  // graph followed by its superedge graphs costs one seek. The threshold
  // is the paper-testbed's 64 KiB head-sweep window scaled 1:1000, like
  // the data (at full scale, skipping more than that is cheaper done as a
  // seek).
  static constexpr uint64_t kNearGap = 64;
  uint64_t seek_ops() const { return seek_ops_; }
  uint64_t transferred_bytes() const { return transferred_bytes_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
  const uint8_t* mapped_ = nullptr;
  uint64_t mapped_size_ = 0;
  mutable uint64_t read_ops_ = 0;
  uint64_t write_ops_ = 0;
  mutable uint64_t bytes_read_ = 0;
  mutable uint64_t seek_ops_ = 0;
  mutable uint64_t transferred_bytes_ = 0;
  mutable uint64_t last_read_end_ = UINT64_MAX;
};

// Removes a file if it exists; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

// Creates a directory (and parents) if absent.
Status EnsureDirectory(const std::string& path);

// Atomically renames `from` to `to` (::rename semantics). Durable only
// after SyncDirectory on the containing directory.
Status RenameFile(const std::string& from, const std::string& to);

// fsyncs a directory so entries created/renamed/removed in it survive a
// power cut. The second half of the write-temp-then-rename publication
// protocol.
Status SyncDirectory(const std::string& path);

}  // namespace wg

#endif  // WG_STORAGE_FILE_H_
