#ifndef WG_STORAGE_INTEGRITY_H_
#define WG_STORAGE_INTEGRITY_H_

#include "obs/metrics.h"

// Process-wide integrity counters (the wg_integrity_* series). They are
// deliberately global rather than per-store: an operator alerting on
// corruption cares that the process saw any, and per-instance series from
// short-lived stores would leak registry memory (see obs/metrics.h).

namespace wg {

struct IntegrityCounters {
  // Blob bytes that failed CRC verification (pread or mapped first touch).
  obs::Counter checksum_failures;
  // SIGBUS faults caught while touching a mapped blob (file truncated or
  // lost sectors behind our back); each one quarantines the file to pread.
  obs::Counter sigbus_faults;
  // Store files that could not be served from a mapping (short file vs
  // directory extents, failed mmap, SIGBUS) and were demoted to pread.
  obs::Counter mmap_fallbacks;
  // S-Node sections quarantined after a corrupt blob (requests touching
  // them fail fast with Unavailable until the store is repaired).
  obs::Counter quarantined_sections;

  static IntegrityCounters& Get();
};

}  // namespace wg

#endif  // WG_STORAGE_INTEGRITY_H_
