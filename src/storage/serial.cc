#include "storage/serial.h"

#include <cstring>

#include "storage/file.h"
#include "util/coding.h"

namespace wg {

uint32_t SerialChecksum(const std::string& payload) {
  uint32_t sum = 0xabadcafe;
  for (size_t i = 0; i < payload.size(); ++i) {
    sum = (sum << 5) | (sum >> 27);
    sum ^= static_cast<uint8_t>(payload[i]);
  }
  return sum;
}

Status WriteFramedFile(const std::string& path, const char magic[4],
                       const std::string& payload) {
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  WG_RETURN_IF_ERROR(file.value()->Append(magic, 4));
  std::string header;
  PutFixed64(&header, payload.size());
  WG_RETURN_IF_ERROR(file.value()->Append(header.data(), header.size()));
  WG_RETURN_IF_ERROR(file.value()->Append(payload.data(), payload.size()));
  std::string footer;
  PutFixed32(&footer, SerialChecksum(payload));
  WG_RETURN_IF_ERROR(file.value()->Append(footer.data(), footer.size()));
  return file.value()->Sync();
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   const char magic[4]) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  uint64_t size = file.value()->size();
  if (size < 16) return Status::Corruption(path + ": too small");
  std::string head(12, '\0');
  WG_RETURN_IF_ERROR(file.value()->Read(0, 12, head.data()));
  if (std::memcmp(head.data(), magic, 4) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  uint64_t payload_size = DecodeFixed64(head.data() + 4);
  if (12 + payload_size + 4 != size) {
    return Status::Corruption(path + ": bad length");
  }
  std::string payload(payload_size, '\0');
  if (payload_size > 0) {
    WG_RETURN_IF_ERROR(file.value()->Read(12, payload_size, payload.data()));
  }
  std::string footer(4, '\0');
  WG_RETURN_IF_ERROR(file.value()->Read(12 + payload_size, 4, footer.data()));
  if (DecodeFixed32(footer.data()) != SerialChecksum(payload)) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  return payload;
}

bool SerialCursor::ReadVarint64(uint64_t* v) {
  size_t used = GetVarint64(data_ + pos_, size_ - pos_, v);
  pos_ += used;
  return used > 0;
}

bool SerialCursor::ReadVarint32(uint32_t* v) {
  size_t used = GetVarint32(data_ + pos_, size_ - pos_, v);
  pos_ += used;
  return used > 0;
}

bool SerialCursor::ReadString(std::string* s) {
  uint64_t len = 0;
  if (!ReadVarint64(&len) || pos_ + len > size_) return false;
  s->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

}  // namespace wg
