#ifndef WG_STORAGE_SIGBUS_GUARD_H_
#define WG_STORAGE_SIGBUS_GUARD_H_

#include <csetjmp>

// SIGBUS protection for reads through a memory mapping. Touching a mapped
// page past the file's real end (a file truncated behind our back, or a
// lost sector under some filesystems) raises SIGBUS and would kill the
// process. Wrap the first touch of newly mapped bytes in a guard:
//
//   SigbusGuard guard;
//   if (sigsetjmp(guard.jump_buffer(), 1) != 0) {
//     // the touch faulted -- treat as corruption, fall back to pread
//   } else {
//     ... dereference mapped bytes ...
//   }
//
// The handler is installed process-wide on first use; a SIGBUS on a thread
// with no active guard re-raises the default disposition (crash), so
// genuine wild faults are not swallowed. Guards nest per thread.

namespace wg {

class SigbusGuard {
 public:
  SigbusGuard();
  ~SigbusGuard();

  SigbusGuard(const SigbusGuard&) = delete;
  SigbusGuard& operator=(const SigbusGuard&) = delete;

  sigjmp_buf& jump_buffer() { return buf_; }

  // True iff a SIGBUS was caught by this guard.
  bool tripped() const { return tripped_; }

 private:
  friend void SigbusGuardHandler(int);
  sigjmp_buf buf_;
  SigbusGuard* prev_;  // enclosing guard on this thread, if any
  bool tripped_ = false;
};

}  // namespace wg

#endif  // WG_STORAGE_SIGBUS_GUARD_H_
