#ifndef WG_STORAGE_FAULT_ENV_H_
#define WG_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "storage/env.h"

// Fault-injecting Env for robustness tests (Env::Install a FaultInjectingEnv
// before the code under test opens files). Two modes compose:
//
//  * Programmable fault points: per-op probabilities (seeded, deterministic)
//    or hard switches for EIO on read/write, short writes, ENOSPC, read
//    bit-flips, and dropped or failing fsyncs.
//
//  * Crash-at-syncpoint: every hooked operation increments an op counter;
//    when it reaches `crash_at_op` the env simulates a power cut -- data
//    written but never fsynced is garbled or zeroed, files created but
//    whose directory was never fsynced may vanish, renames not followed by
//    a directory fsync may be rolled back (coin flips, seeded) -- and then
//    invokes `on_crash` (default `_exit(kCrashExitCode)`, for fork()-based
//    harnesses). A dry run with no faults yields the total op count so a
//    harness can pick random kill points.
//
// The power-cut model is deliberately adversarial: only what the fsync
// discipline (file sync + directory sync) actually guarantees survives.

namespace wg {

class FaultInjectingEnv : public Env {
 public:
  static constexpr int kCrashExitCode = 42;

  struct Options {
    uint64_t seed = 1;

    // Probabilistic faults, evaluated per matching op.
    double read_error_prob = 0.0;    // pread reports EIO
    double read_bitflip_prob = 0.0;  // one random bit flipped in the buffer
    double write_error_prob = 0.0;   // pwrite reports EIO before any byte
    double write_short_prob = 0.0;   // random prefix lands, then ENOSPC
    double sync_drop_prob = 0.0;     // fsync "succeeds" without syncing
    double sync_error_prob = 0.0;    // fsync reports EIO

    // Hard switches (apply to every matching op).
    bool fail_reads = false;
    bool fail_writes = false;
    bool fail_syncs = false;
    bool drop_syncs = false;  // lying disk: every fsync is silently dropped

    // Faults apply only to paths containing this substring (empty = all).
    // Op counting and power-cut tracking always cover every path.
    std::string path_filter;

    // Simulate a power cut when the op counter reaches this value (<0 =
    // never). Ops are counted across open/read/write/sync/rename/
    // dir-sync/remove hooks.
    int64_t crash_at_op = -1;
  };

  explicit FaultInjectingEnv(Options options);
  ~FaultInjectingEnv() override;

  // Total hooked operations observed so far.
  int64_t op_count() const;

  void set_crash_at_op(int64_t op);
  // Invoked after the power cut is applied; default _exit(kCrashExitCode).
  void set_on_crash(std::function<void()> fn);

  // Applies the power-cut disk state (garble unsynced writes, drop
  // unsynced creates, roll back unsynced renames) without exiting.
  // Idempotent; after this the env stops injecting further faults.
  void SimulatePowerCut();

  // Env hooks.
  Status OnOpen(const std::string& path) override;
  Status OnRead(const std::string& path, uint64_t offset, size_t n,
                char* scratch) override;
  Status OnWrite(const std::string& path, uint64_t offset, size_t n,
                 size_t* allowed) override;
  void DidWrite(const std::string& path, uint64_t offset, size_t n) override;
  SyncAction OnSync(const std::string& path, Status* error) override;
  void DidSync(const std::string& path) override;
  Status OnRename(const std::string& from, const std::string& to) override;
  void DidRename(const std::string& from, const std::string& to) override;
  SyncAction OnSyncDir(const std::string& path, Status* error) override;
  void DidSyncDir(const std::string& path) override;
  Status OnRemove(const std::string& path) override;

 private:
  struct Range {
    uint64_t offset;
    uint64_t length;
  };
  // Volatile (not-yet-durable) state of one file.
  struct FileState {
    std::vector<Range> unsynced;  // written since the last effective fsync
    bool pending_create = false;  // created, parent dir never fsynced
  };
  // A rename whose parent directory has not been fsynced yet.
  struct PendingRename {
    std::string from;
    std::string to;
    bool target_existed = false;
    std::string target_contents;  // previous bytes of `to`, if it existed
  };

  bool Matches(const std::string& path) const;
  uint64_t NextRandom();           // requires mu_ held
  bool Chance(double p);           // requires mu_ held
  void CountOpLocked(std::unique_lock<std::mutex>& lock);
  void SimulatePowerCutLocked();   // requires mu_ held

  const Options options_;
  mutable std::mutex mu_;
  uint64_t rng_state_;
  int64_t ops_ = 0;
  int64_t crash_at_op_;
  bool dead_ = false;  // power cut applied; stop injecting
  std::function<void()> on_crash_;
  std::map<std::string, FileState> files_;
  std::vector<PendingRename> pending_renames_;
};

}  // namespace wg

#endif  // WG_STORAGE_FAULT_ENV_H_
