#ifndef WG_STORAGE_SERIAL_H_
#define WG_STORAGE_SERIAL_H_

#include <string>

#include "util/status.h"

// Tiny framing layer shared by the persistence formats (graph files,
// S-Node metadata): a 4-byte magic, a fixed64 payload length, the payload,
// and a fixed32 checksum. Payload contents are written with the varint
// helpers from util/coding.h and read back through SerialCursor, which
// fails softly on truncation.

namespace wg {

// XOR-rotate checksum; guards truncation/corruption, not adversaries.
uint32_t SerialChecksum(const std::string& payload);

// Incremental form of SerialChecksum for single-pass streaming readers
// that never hold the whole payload: feeding the payload bytes in order
// through Update yields exactly SerialChecksum(payload).
class StreamingSerialChecksum {
 public:
  void Update(const char* data, size_t n) {
    uint32_t sum = sum_;
    for (size_t i = 0; i < n; ++i) {
      sum = (sum << 5) | (sum >> 27);
      sum ^= static_cast<uint8_t>(data[i]);
    }
    sum_ = sum;
  }
  uint32_t value() const { return sum_; }

 private:
  uint32_t sum_ = 0xabadcafe;
};

// Writes magic + length + payload + checksum to `path` (replacing it).
Status WriteFramedFile(const std::string& path, const char magic[4],
                       const std::string& payload);

// Reads and verifies a framed file, returning the payload.
Result<std::string> ReadFramedFile(const std::string& path,
                                   const char magic[4]);

// Forward cursor over a payload with soft-failing readers.
class SerialCursor {
 public:
  SerialCursor(const char* data, size_t size) : data_(data), size_(size) {}
  explicit SerialCursor(const std::string& payload)
      : SerialCursor(payload.data(), payload.size()) {}

  bool ReadVarint64(uint64_t* v);
  bool ReadVarint32(uint32_t* v);
  bool ReadString(std::string* s);
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace wg

#endif  // WG_STORAGE_SERIAL_H_
