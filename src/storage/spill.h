#ifndef WG_STORAGE_SPILL_H_
#define WG_STORAGE_SPILL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/file.h"
#include "util/status.h"

// Bounded-memory spill files for the out-of-core build pipeline
// (DESIGN.md section 14). Three primitives, all on RandomAccessFile so
// every byte goes through the Env hook layer and fault injection covers
// spills exactly like it covers packs:
//
//  - SpillLog: an append-only log with random-access reads that see
//    through the unflushed write-buffer tail. Used for the URL log and
//    the raw adjacency/target log during streaming builds, where the
//    generator appends the current page while preferential attachment
//    samples arbitrary earlier offsets. A resident per-64KiB-block CRC
//    table is built at append time and each fully-flushed block is
//    verified once, on the first read that touches it, so a corrupted
//    spill surfaces as Status::Corruption instead of silently skewing
//    the partition.
//
//  - SortedRunWriter/SortedRunReader: CRC-framed sequential record
//    blocks ([fixed32 payload_len | payload | fixed32 crc32]) for the
//    external sort's spilled runs. Every block is verified when read
//    back (each is read exactly once during the merge, so the check is
//    one cheap pass).
//
//  - ExternalSorter: accumulates byte-string records, spills sorted
//    runs when the configured budget fills, and k-way merges them back
//    in strict lexicographic order. Callers encode keys so that
//    bytewise comparison is the sort order (big-endian fixed-width
//    integers, NUL-terminated strings) and include a unique suffix
//    (page id), which makes the merged sequence independent of how the
//    input happened to be cut into runs -- the determinism invariant
//    the byte-identical streaming build rests on.
//
// Concurrency: SpillLog has a single-writer/many-readers contract;
// reads are serialized behind an internal mutex (RandomAccessFile's
// disk-model counters are not atomic). The sorter and run files are
// single-threaded.

namespace wg {

class SpillLog {
 public:
  // Creates (truncating) `path`. `buffer_bytes` is the write-buffer
  // capacity; appends beyond it flush to disk.
  static Result<std::unique_ptr<SpillLog>> Create(const std::string& path,
                                                  size_t buffer_bytes);

  // Closes the file. Does NOT remove it; the owning pipeline removes
  // spill files once the build is done (or failed).
  ~SpillLog() = default;

  SpillLog(const SpillLog&) = delete;
  SpillLog& operator=(const SpillLog&) = delete;

  // Appends `n` bytes. Single writer; may run concurrently with ReadAt.
  Status Append(const void* data, size_t n);

  // Reads [offset, offset+n), served from disk and/or the unflushed
  // buffer tail. Thread-safe. The first read touching a fully-flushed
  // 64 KiB block re-reads and CRC-checks that block.
  Status ReadAt(uint64_t offset, size_t n, char* out) const;

  // Total bytes appended so far (flushed + buffered). Thread-safe.
  uint64_t size() const;

  // Flushes the buffered tail to disk.
  Status Flush();

  const std::string& path() const { return path_; }

  // Blocks CRC-verified so far (observability for tests).
  uint64_t verified_blocks() const;

  static constexpr size_t kCrcBlockBytes = 64 * 1024;

 private:
  SpillLog(std::string path, std::unique_ptr<RandomAccessFile> file,
           size_t buffer_bytes);

  Status FlushLocked();
  Status VerifyTouchedBlocksLocked(uint64_t offset, size_t n) const;

  const std::string path_;
  std::unique_ptr<RandomAccessFile> file_;
  const size_t buffer_bytes_;

  mutable std::mutex mu_;
  std::string buffer_;        // unflushed tail; total_ - flushed_ bytes
  uint64_t flushed_ = 0;      // bytes on disk
  uint64_t total_ = 0;        // bytes appended
  // Per-complete-block CRCs, built as bytes stream through Append.
  std::vector<uint32_t> block_crcs_;
  uint32_t tail_crc_ = 0;     // running CRC of the current partial block
  size_t tail_block_bytes_ = 0;
  mutable std::vector<uint8_t> verified_;  // grown lazily with block_crcs_
  mutable uint64_t verified_count_ = 0;
  mutable std::string verify_scratch_;
};

// Writes one sorted run as CRC-framed record blocks. Records are
// varint-length-prefixed inside each block payload and never span
// blocks (a record larger than the block size gets a block to itself).
class SortedRunWriter {
 public:
  static Result<std::unique_ptr<SortedRunWriter>> Create(
      const std::string& path, size_t block_bytes = 1 << 20);

  Status Add(std::string_view record);
  // Flushes the final block. Must be called before reading the run.
  Status Finish();

  const std::string& path() const { return path_; }

 private:
  SortedRunWriter(std::string path, std::unique_ptr<RandomAccessFile> file,
                  size_t block_bytes);
  Status FlushBlock();

  const std::string path_;
  std::unique_ptr<RandomAccessFile> file_;
  const size_t block_bytes_;
  std::string block_;
  bool finished_ = false;
};

// Sequential reader over a SortedRunWriter file. Every block's CRC is
// verified as it is loaded; mismatch surfaces as Status::Corruption.
class SortedRunReader {
 public:
  static Result<std::unique_ptr<SortedRunReader>> Open(
      const std::string& path);

  // Fetches the next record. Returns true with *record filled, or false
  // at end of run.
  Result<bool> Next(std::string* record);

 private:
  SortedRunReader(std::string path, std::unique_ptr<RandomAccessFile> file);
  Status LoadBlock();

  const std::string path_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_offset_ = 0;
  std::string block_;
  size_t block_pos_ = 0;
};

// External sort of byte-string records in lexicographic order under a
// memory budget. Records must be unique for the output order to be
// independent of run boundaries (callers append a unique id suffix).
class ExternalSorter {
 public:
  // Run files are `<temp_prefix>.run-N`. `memory_budget_bytes` bounds
  // the in-memory record buffer (a spill triggers when it fills).
  ExternalSorter(std::string temp_prefix, size_t memory_budget_bytes);
  // Best-effort removal of any remaining run files.
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  Status Add(std::string_view record);

  // Sorts and streams every record, in ascending lexicographic order,
  // to `emit`. Single use. Run files are removed on success.
  Status Merge(const std::function<Status(std::string_view)>& emit);

  size_t num_runs() const { return run_paths_.size(); }
  // Runs spilled over the sorter's lifetime (unlike num_runs, survives
  // Merge removing the run files). 0 = everything fit in memory.
  size_t runs_spilled() const { return runs_spilled_; }

 private:
  Status SpillRun();
  Status RemoveRuns();

  const std::string temp_prefix_;
  const size_t memory_budget_bytes_;
  std::vector<std::string> records_;
  size_t buffered_bytes_ = 0;
  std::vector<std::string> run_paths_;
  size_t runs_spilled_ = 0;
  bool merged_ = false;
};

// Buffered forward reader over a file region, for single-pass decoding
// of framed formats (the streaming WGG1 ingest). Varints may span
// refill boundaries. Optionally feeds every consumed byte to a
// StreamingSerialChecksum (set via set_checksum).
class StreamingSerialChecksum;

class SequentialFileReader {
 public:
  static Result<std::unique_ptr<SequentialFileReader>> Open(
      const std::string& path, size_t buffer_bytes = 1 << 20);

  // Reads exactly `n` bytes; fails with Corruption past end of file.
  Status Read(size_t n, char* out);
  Status ReadVarint64(uint64_t* v);
  Status ReadVarint32(uint32_t* v);

  // Bytes consumed so far (= current file offset).
  uint64_t position() const { return consumed_; }
  uint64_t file_size() const { return file_->size(); }

  // Subsequent consumed bytes are folded into `sum` (nullptr to stop).
  void set_checksum(StreamingSerialChecksum* sum) { checksum_ = sum; }

 private:
  SequentialFileReader(std::unique_ptr<RandomAccessFile> file,
                       size_t buffer_bytes);
  Status ReadByte(uint8_t* b);
  Status Refill();

  std::unique_ptr<RandomAccessFile> file_;
  const size_t buffer_bytes_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  uint64_t consumed_ = 0;  // absolute offset of buffer_[buffer_pos_]
  StreamingSerialChecksum* checksum_ = nullptr;
};

}  // namespace wg

#endif  // WG_STORAGE_SPILL_H_
