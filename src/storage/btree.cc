#include "storage/btree.h"

#include <cstring>

#include "util/coding.h"

namespace wg {

namespace {

// Page layout.
//
// Common header (8 bytes):
//   [0]    node type: 1 = leaf, 2 = internal
//   [1]    unused
//   [2:4]  entry count (uint16)
//   [4:8]  leaf: next-leaf page num; internal: leftmost child
//
// Leaf entries at offset 8: count * (key u64, value u64).
// Internal entries at offset 8: count * (key u64, child u32); child i+1 of
// the node, i.e. the subtree holding keys >= key i. header[4:8] is child 0.

constexpr size_t kHeaderSize = 8;
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalEntrySize = 12;
constexpr uint16_t kLeafCapacity =
    static_cast<uint16_t>((kPageSize - kHeaderSize) / kLeafEntrySize);
constexpr uint16_t kInternalCapacity =
    static_cast<uint16_t>((kPageSize - kHeaderSize) / kInternalEntrySize);

uint8_t NodeType(const char* p) { return static_cast<uint8_t>(p[0]); }
void SetNodeType(char* p, uint8_t t) { p[0] = static_cast<char>(t); }

uint16_t Count(const char* p) {
  uint16_t c;
  std::memcpy(&c, p + 2, 2);
  return c;
}
void SetCount(char* p, uint16_t c) { std::memcpy(p + 2, &c, 2); }

uint32_t Link(const char* p) { return DecodeFixed32(p + 4); }
void SetLink(char* p, uint32_t v) { EncodeFixed32(p + 4, v); }

uint64_t LeafKey(const char* p, uint16_t i) {
  return DecodeFixed64(p + kHeaderSize + i * kLeafEntrySize);
}
uint64_t LeafValue(const char* p, uint16_t i) {
  return DecodeFixed64(p + kHeaderSize + i * kLeafEntrySize + 8);
}
void SetLeafEntry(char* p, uint16_t i, uint64_t key, uint64_t value) {
  EncodeFixed64(p + kHeaderSize + i * kLeafEntrySize, key);
  EncodeFixed64(p + kHeaderSize + i * kLeafEntrySize + 8, value);
}

uint64_t InternalKey(const char* p, uint16_t i) {
  return DecodeFixed64(p + kHeaderSize + i * kInternalEntrySize);
}
uint32_t InternalChild(const char* p, uint16_t i) {
  // Child i+1; child 0 lives in the header link field.
  return DecodeFixed32(p + kHeaderSize + i * kInternalEntrySize + 8);
}
void SetInternalEntry(char* p, uint16_t i, uint64_t key, uint32_t child) {
  EncodeFixed64(p + kHeaderSize + i * kInternalEntrySize, key);
  EncodeFixed32(p + kHeaderSize + i * kInternalEntrySize + 8, child);
}

// Index of the first leaf entry with key >= target.
uint16_t LeafLowerBound(const char* p, uint64_t key) {
  uint16_t lo = 0, hi = Count(p);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (LeafKey(p, mid) < key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index (0..count) to descend into for `key`.
uint16_t InternalChildIndex(const char* p, uint64_t key) {
  uint16_t lo = 0, hi = Count(p);
  // Descend into the child after the last separator <= key.
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (InternalKey(p, mid) <= key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t ChildAt(const char* p, uint16_t idx) {
  return idx == 0 ? Link(p) : InternalChild(p, static_cast<uint16_t>(idx - 1));
}

}  // namespace

Result<std::unique_ptr<BTree>> BTree::Create(Pager* pager) {
  WG_ASSIGN_OR_RETURN(PageNum root, pager->Allocate());
  {
    WG_ASSIGN_OR_RETURN(PageHandle h, pager->Fetch(root));
    SetNodeType(h.data(), 1);
    SetCount(h.data(), 0);
    SetLink(h.data(), kInvalidPageNum);
    h.MarkDirty();
  }
  return std::unique_ptr<BTree>(new BTree(pager, root));
}

std::unique_ptr<BTree> BTree::Attach(Pager* pager, PageNum root) {
  return std::unique_ptr<BTree>(new BTree(pager, root));
}

Status BTree::Insert(uint64_t key, uint64_t value) {
  SplitResult split;
  WG_RETURN_IF_ERROR(InsertRecursive(root_, key, value, &split));
  if (split.split) {
    // Grow a new root.
    WG_ASSIGN_OR_RETURN(PageNum new_root, pager_->Allocate());
    WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(new_root));
    SetNodeType(h.data(), 2);
    SetCount(h.data(), 1);
    SetLink(h.data(), root_);
    SetInternalEntry(h.data(), 0, split.separator, split.right);
    h.MarkDirty();
    root_ = new_root;
  }
  return Status::OK();
}

Status BTree::InsertRecursive(PageNum node, uint64_t key, uint64_t value,
                              SplitResult* out) {
  out->split = false;
  WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(node));
  char* p = h.data();
  if (NodeType(p) == 1) {
    uint16_t count = Count(p);
    uint16_t pos = LeafLowerBound(p, key);
    if (pos < count && LeafKey(p, pos) == key) {
      SetLeafEntry(p, pos, key, value);  // overwrite
      h.MarkDirty();
      return Status::OK();
    }
    if (count < kLeafCapacity) {
      std::memmove(p + kHeaderSize + (pos + 1) * kLeafEntrySize,
                   p + kHeaderSize + pos * kLeafEntrySize,
                   (count - pos) * kLeafEntrySize);
      SetLeafEntry(p, pos, key, value);
      SetCount(p, static_cast<uint16_t>(count + 1));
      h.MarkDirty();
      ++num_entries_;
      return Status::OK();
    }
    // Split the leaf, then insert into the proper half.
    WG_ASSIGN_OR_RETURN(PageNum right_num, pager_->Allocate());
    WG_ASSIGN_OR_RETURN(PageHandle rh, pager_->Fetch(right_num));
    char* r = rh.data();
    uint16_t mid = static_cast<uint16_t>(count / 2);
    SetNodeType(r, 1);
    SetCount(r, static_cast<uint16_t>(count - mid));
    SetLink(r, Link(p));
    std::memcpy(r + kHeaderSize, p + kHeaderSize + mid * kLeafEntrySize,
                (count - mid) * kLeafEntrySize);
    SetCount(p, mid);
    SetLink(p, right_num);
    h.MarkDirty();
    rh.MarkDirty();
    uint64_t sep = LeafKey(r, 0);
    // Insert into whichever half now owns the key (capacity is available).
    char* tgt = key < sep ? p : r;
    PageHandle& th = key < sep ? h : rh;
    uint16_t tcount = Count(tgt);
    uint16_t tpos = LeafLowerBound(tgt, key);
    std::memmove(tgt + kHeaderSize + (tpos + 1) * kLeafEntrySize,
                 tgt + kHeaderSize + tpos * kLeafEntrySize,
                 (tcount - tpos) * kLeafEntrySize);
    SetLeafEntry(tgt, tpos, key, value);
    SetCount(tgt, static_cast<uint16_t>(tcount + 1));
    th.MarkDirty();
    ++num_entries_;
    out->split = true;
    out->separator = LeafKey(r, 0);
    out->right = right_num;
    return Status::OK();
  }

  // Internal node.
  uint16_t idx = InternalChildIndex(p, key);
  PageNum child = ChildAt(p, idx);
  // Release our pin while descending? Keep it pinned: tree height is tiny
  // and the pool guarantees >= 8 frames.
  SplitResult child_split;
  WG_RETURN_IF_ERROR(InsertRecursive(child, key, value, &child_split));
  if (!child_split.split) return Status::OK();

  uint16_t count = Count(p);
  if (count < kInternalCapacity) {
    // Shift entries right of idx and insert (separator, right).
    std::memmove(p + kHeaderSize + (idx + 1) * kInternalEntrySize,
                 p + kHeaderSize + idx * kInternalEntrySize,
                 (count - idx) * kInternalEntrySize);
    SetInternalEntry(p, idx, child_split.separator, child_split.right);
    SetCount(p, static_cast<uint16_t>(count + 1));
    h.MarkDirty();
    return Status::OK();
  }

  // Split this internal node. Build the full entry list in memory for
  // clarity (<= capacity+1 entries).
  struct Entry {
    uint64_t key;
    uint32_t child;
  };
  std::vector<Entry> entries;
  entries.reserve(count + 1);
  for (uint16_t i = 0; i < count; ++i) {
    entries.push_back({InternalKey(p, i), InternalChild(p, i)});
  }
  entries.insert(entries.begin() + idx,
                 {child_split.separator, child_split.right});
  uint32_t child0 = Link(p);

  uint16_t total = static_cast<uint16_t>(entries.size());
  uint16_t mid = static_cast<uint16_t>(total / 2);
  // entries[mid].key moves up as the separator; entries[mid].child becomes
  // the right node's child0.
  WG_ASSIGN_OR_RETURN(PageNum right_num, pager_->Allocate());
  WG_ASSIGN_OR_RETURN(PageHandle rh, pager_->Fetch(right_num));
  char* r = rh.data();
  SetNodeType(r, 2);
  SetLink(r, entries[mid].child);
  SetCount(r, static_cast<uint16_t>(total - mid - 1));
  for (uint16_t i = static_cast<uint16_t>(mid + 1); i < total; ++i) {
    SetInternalEntry(r, static_cast<uint16_t>(i - mid - 1), entries[i].key,
                     entries[i].child);
  }
  SetNodeType(p, 2);
  SetLink(p, child0);
  SetCount(p, mid);
  for (uint16_t i = 0; i < mid; ++i) {
    SetInternalEntry(p, i, entries[i].key, entries[i].child);
  }
  h.MarkDirty();
  rh.MarkDirty();
  out->split = true;
  out->separator = entries[mid].key;
  out->right = right_num;
  return Status::OK();
}

Status BTree::FindLeaf(uint64_t key, PageNum* leaf) {
  PageNum node = root_;
  for (;;) {
    WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(node));
    const char* p = h.data();
    if (NodeType(p) == 1) {
      *leaf = node;
      return Status::OK();
    }
    node = ChildAt(p, InternalChildIndex(p, key));
  }
}

Status BTree::Get(uint64_t key, uint64_t* value, bool* found) {
  *found = false;
  PageNum leaf;
  WG_RETURN_IF_ERROR(FindLeaf(key, &leaf));
  WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(leaf));
  const char* p = h.data();
  uint16_t pos = LeafLowerBound(p, key);
  if (pos < Count(p) && LeafKey(p, pos) == key) {
    *value = LeafValue(p, pos);
    *found = true;
  }
  return Status::OK();
}

Result<BTree::Iterator> BTree::Seek(uint64_t key) {
  Iterator it;
  it.tree_ = this;
  PageNum leaf;
  WG_RETURN_IF_ERROR(FindLeaf(key, &leaf));
  it.leaf_ = leaf;
  {
    WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(leaf));
    it.index_ = LeafLowerBound(h.data(), key);
  }
  it.valid_ = true;
  it.Load();
  return it;
}

void BTree::Iterator::Load() {
  while (valid_) {
    auto h = tree_->pager_->Fetch(leaf_);
    if (!h.ok()) {
      status_ = h.status();
      valid_ = false;
      return;
    }
    const char* p = h.value().data();
    if (index_ < Count(p)) {
      key_ = LeafKey(p, index_);
      value_ = LeafValue(p, index_);
      return;
    }
    PageNum next = Link(p);
    if (next == kInvalidPageNum) {
      valid_ = false;
      return;
    }
    leaf_ = next;
    index_ = 0;
  }
}

void BTree::Iterator::Next() {
  if (!valid_) return;
  ++index_;
  Load();
}

Result<uint32_t> BTree::Height() {
  uint32_t height = 1;
  PageNum node = root_;
  for (;;) {
    WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(node));
    const char* p = h.data();
    if (NodeType(p) == 1) return height;
    node = ChildAt(p, 0);
    ++height;
  }
}

}  // namespace wg
