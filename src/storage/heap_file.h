#ifndef WG_STORAGE_HEAP_FILE_H_
#define WG_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/pager.h"
#include "util/status.h"

// A heap file of variable-length rows on the shared Pager: the table store
// of the relational baseline (one row per page adjacency list, as in the
// paper's PostgreSQL scheme). Rows larger than one page spill into overflow
// page chains, the way TOAST-ed rows do.
//
// Row ids are (page << 16 | slot) and remain stable (no deletion/vacuum in
// this read-mostly workload).

namespace wg {

using RowId = uint64_t;

class HeapFile {
 public:
  // Creates an empty heap starting a fresh page chain on `pager` (which
  // must outlive the heap).
  static Result<std::unique_ptr<HeapFile>> Create(Pager* pager);

  // Appends a row; returns its id.
  Result<RowId> Append(const std::string& payload);

  // Reads a row into *payload.
  Status Read(RowId row, std::string* payload);

  size_t num_rows() const { return num_rows_; }

 private:
  explicit HeapFile(Pager* pager) : pager_(pager) {}

  Status StartNewDataPage();

  Pager* pager_;
  PageNum current_ = kInvalidPageNum;  // page currently being filled
  size_t num_rows_ = 0;
};

}  // namespace wg

#endif  // WG_STORAGE_HEAP_FILE_H_
