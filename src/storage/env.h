#ifndef WG_STORAGE_ENV_H_
#define WG_STORAGE_ENV_H_

#include <cstdint>
#include <string>

#include "util/status.h"

// The process-wide environment hook the POSIX file layer consults on every
// fallible operation. Production runs the default no-op Env; tests install
// a FaultInjectingEnv (storage/fault_env.h) to script short reads, EIO,
// ENOSPC, bit-flips, dropped syncs, and crash-at-syncpoint power cuts
// without touching any call site.
//
// Design note: this is a hook layer on the concrete RandomAccessFile
// rather than a LevelDB-style virtual Env/File hierarchy because the hot
// read path is a memory *mapping* -- no wrapper object sits between the
// decoder and the mapped bytes, so a vtable wrapper could never intercept
// those reads anyway. Mapped-path fault injection is instead exercised by
// corrupting or truncating the files themselves (the bit-flip fuzz and
// SIGBUS tests); the hooks cover everything that goes through a syscall.

namespace wg {

class Env {
 public:
  virtual ~Env() = default;

  // The installed environment; never null. Install(nullptr) restores the
  // default no-op instance. Not synchronized with in-flight file
  // operations: install before the code under test opens files.
  static Env* Current();
  static void Install(Env* env);

  // Called before ::open. A non-OK status fails the open.
  virtual Status OnOpen(const std::string& path);

  // Called after a successful pread of [offset, offset+n) into `scratch`.
  // May corrupt the buffer (bit-flips) or turn the read into a failure.
  virtual Status OnRead(const std::string& path, uint64_t offset, size_t n,
                        char* scratch);

  // Called before a pwrite of [offset, offset+n). May fail the write
  // (EIO/ENOSPC) or shorten it by lowering *allowed (a short write: the
  // first *allowed bytes land on disk, then the error is returned).
  virtual Status OnWrite(const std::string& path, uint64_t offset, size_t n,
                         size_t* allowed);

  // Called after the bytes of a write have landed (full or short).
  virtual void DidWrite(const std::string& path, uint64_t offset, size_t n);

  // Called before fsync. kDrop pretends success without syncing (the
  // lying-disk model); kFail returns an error; kSync runs the real fsync.
  enum class SyncAction { kSync, kDrop, kFail };
  virtual SyncAction OnSync(const std::string& path, Status* error);

  // Called after a real fsync succeeded (unsynced-data trackers clear).
  virtual void DidSync(const std::string& path);

  // Called before ::rename. Non-OK fails the rename.
  virtual Status OnRename(const std::string& from, const std::string& to);
  virtual void DidRename(const std::string& from, const std::string& to);

  // Called before/after fsync of a directory fd (SyncDirectory).
  virtual SyncAction OnSyncDir(const std::string& path, Status* error);
  virtual void DidSyncDir(const std::string& path);

  // Called before ::unlink (RemoveFileIfExists).
  virtual Status OnRemove(const std::string& path);
};

}  // namespace wg

#endif  // WG_STORAGE_ENV_H_
