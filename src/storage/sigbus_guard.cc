#include "storage/sigbus_guard.h"

#include <csignal>
#include <mutex>

namespace wg {

namespace {

thread_local SigbusGuard* g_active_guard = nullptr;

}  // namespace

void SigbusGuardHandler(int sig) {
  SigbusGuard* guard = g_active_guard;
  if (guard == nullptr) {
    // No guard on this thread: restore the default disposition and
    // re-raise so the process dies with the normal SIGBUS report.
    ::signal(sig, SIG_DFL);
    ::raise(sig);
    return;
  }
  guard->tripped_ = true;
  siglongjmp(guard->buf_, 1);
}

namespace {

void InstallHandlerOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    sa.sa_handler = SigbusGuardHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_NODEFER: the handler longjmps out, so unblock via the
    // sigsetjmp(buf, 1) savemask instead.
    sa.sa_flags = 0;
    ::sigaction(SIGBUS, &sa, nullptr);
  });
}

}  // namespace

SigbusGuard::SigbusGuard() : prev_(g_active_guard) {
  InstallHandlerOnce();
  g_active_guard = this;
}

SigbusGuard::~SigbusGuard() { g_active_guard = prev_; }

}  // namespace wg
