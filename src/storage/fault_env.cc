#include "storage/fault_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace wg {

namespace {

std::string Dirname(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Raw POSIX helpers used by the power-cut simulation. These bypass the Env
// hooks on purpose: they model what the disk platter ends up holding, not
// operations the program performs.
bool RawExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

bool RawReadAll(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof buf)) > 0) {
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return r == 0;
}

void RawWriteAll(const std::string& path, const std::string& data) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w = ::write(fd, data.data() + done, data.size() - done);
    if (w <= 0) break;
    done += static_cast<size_t>(w);
  }
  ::close(fd);
}

void RawGarble(const std::string& path, uint64_t offset, uint64_t length,
               bool zero, uint64_t seed) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (offset < size) {
    uint64_t n = std::min(length, size - offset);
    std::string junk(n, '\0');
    if (!zero) {
      uint64_t s = seed;
      for (uint64_t i = 0; i < n; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        junk[i] = static_cast<char>(s >> 33);
      }
    }
    ::pwrite(fd, junk.data(), junk.size(), static_cast<off_t>(offset));
  }
  ::close(fd);
}

}  // namespace

FaultInjectingEnv::FaultInjectingEnv(Options options)
    : options_(std::move(options)),
      rng_state_(options_.seed ^ 0x9e3779b97f4a7c15ULL),
      crash_at_op_(options_.crash_at_op) {}

FaultInjectingEnv::~FaultInjectingEnv() = default;

int64_t FaultInjectingEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

void FaultInjectingEnv::set_crash_at_op(int64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_op_ = op;
}

void FaultInjectingEnv::set_on_crash(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  on_crash_ = std::move(fn);
}

bool FaultInjectingEnv::Matches(const std::string& path) const {
  return options_.path_filter.empty() ||
         path.find(options_.path_filter) != std::string::npos;
}

uint64_t FaultInjectingEnv::NextRandom() {
  // splitmix64: deterministic per seed, good enough bit mixing.
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool FaultInjectingEnv::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return (NextRandom() >> 11) * 0x1.0p-53 < p;
}

void FaultInjectingEnv::CountOpLocked(std::unique_lock<std::mutex>& lock) {
  ++ops_;
  if (dead_ || crash_at_op_ < 0 || ops_ < crash_at_op_) return;
  SimulatePowerCutLocked();
  std::function<void()> cb = on_crash_;
  lock.unlock();
  if (cb) {
    cb();
  } else {
    _exit(kCrashExitCode);
  }
}

void FaultInjectingEnv::SimulatePowerCut() {
  std::unique_lock<std::mutex> lock(mu_);
  SimulatePowerCutLocked();
}

void FaultInjectingEnv::SimulatePowerCutLocked() {
  if (dead_) return;
  dead_ = true;
  // 1. Renames whose directory was never fsynced: coin flip whether the
  //    rename reached the platter; if not, roll it back (restoring the
  //    previous destination contents), newest first.
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    if (NextRandom() & 1) continue;  // survived the cut
    if (RawExists(it->to)) ::rename(it->to.c_str(), it->from.c_str());
    if (it->target_existed) {
      RawWriteAll(it->to, it->target_contents);
    }
    auto state = files_.find(it->to);
    if (state != files_.end()) {
      files_[it->from] = std::move(state->second);
      files_.erase(state);
    }
  }
  pending_renames_.clear();
  // 2. Files created but whose directory entry was never made durable:
  //    coin flip whether the entry survived.
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->second.pending_create && (NextRandom() & 1) == 0) {
      ::unlink(it->first.c_str());
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  // 3. Data written but never fsynced: each range independently either
  //    zeroed (page never left the cache) or filled with junk (torn
  //    sector), clamped to the file's on-disk extent.
  for (auto& entry : files_) {
    for (const Range& range : entry.second.unsynced) {
      RawGarble(entry.first, range.offset, range.length, NextRandom() & 1,
                NextRandom());
    }
    entry.second.unsynced.clear();
  }
}

Status FaultInjectingEnv::OnOpen(const std::string& path) {
  std::unique_lock<std::mutex> lock(mu_);
  bool existed = RawExists(path);
  CountOpLocked(lock);
  if (!lock.owns_lock()) return Status::OK();  // crashed in-process
  if (!existed) files_[path].pending_create = true;
  return Status::OK();
}

Status FaultInjectingEnv::OnRead(const std::string& path, uint64_t offset,
                                 size_t n, char* scratch) {
  (void)offset;
  std::unique_lock<std::mutex> lock(mu_);
  CountOpLocked(lock);
  if (!lock.owns_lock()) return Status::OK();
  if (dead_ || !Matches(path) || n == 0) return Status::OK();
  if (options_.fail_reads || Chance(options_.read_error_prob)) {
    return Status::IOError("injected read error: " + path);
  }
  if (Chance(options_.read_bitflip_prob)) {
    uint64_t bit = NextRandom() % (static_cast<uint64_t>(n) * 8);
    scratch[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
  return Status::OK();
}

Status FaultInjectingEnv::OnWrite(const std::string& path, uint64_t offset,
                                  size_t n, size_t* allowed) {
  std::unique_lock<std::mutex> lock(mu_);
  CountOpLocked(lock);
  if (!lock.owns_lock()) return Status::OK();
  if (dead_ || !Matches(path)) return Status::OK();
  (void)offset;
  if (options_.fail_writes || Chance(options_.write_error_prob)) {
    *allowed = 0;
    return Status::IOError("injected write error: " + path);
  }
  if (n > 0 && Chance(options_.write_short_prob)) {
    *allowed = static_cast<size_t>(NextRandom() % n);
    return Status::ResourceExhausted("injected short write (ENOSPC): " + path);
  }
  return Status::OK();
}

void FaultInjectingEnv::DidWrite(const std::string& path, uint64_t offset,
                                 size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].unsynced.push_back(Range{offset, n});
}

Env::SyncAction FaultInjectingEnv::OnSync(const std::string& path,
                                          Status* error) {
  std::unique_lock<std::mutex> lock(mu_);
  CountOpLocked(lock);
  if (!lock.owns_lock()) return SyncAction::kDrop;
  if (dead_ || !Matches(path)) return SyncAction::kSync;
  if (options_.fail_syncs || Chance(options_.sync_error_prob)) {
    *error = Status::IOError("injected fsync error: " + path);
    return SyncAction::kFail;
  }
  if (options_.drop_syncs || Chance(options_.sync_drop_prob)) {
    return SyncAction::kDrop;
  }
  return SyncAction::kSync;
}

void FaultInjectingEnv::DidSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) it->second.unsynced.clear();
  // The directory entry of a newly created file still needs a directory
  // fsync; pending_create deliberately survives a file-data fsync.
}

Status FaultInjectingEnv::OnRename(const std::string& from,
                                   const std::string& to) {
  std::unique_lock<std::mutex> lock(mu_);
  PendingRename pending;
  pending.from = from;
  pending.to = to;
  pending.target_existed =
      RawExists(to) && RawReadAll(to, &pending.target_contents);
  CountOpLocked(lock);
  if (!lock.owns_lock()) return Status::OK();
  if (!dead_) pending_renames_.push_back(std::move(pending));
  return Status::OK();
}

void FaultInjectingEnv::DidRename(const std::string& from,
                                  const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    FileState state = std::move(it->second);
    state.pending_create = false;  // governed by the pending-rename entry now
    files_.erase(it);
    files_[to] = std::move(state);
  }
}

Env::SyncAction FaultInjectingEnv::OnSyncDir(const std::string& path,
                                             Status* error) {
  std::unique_lock<std::mutex> lock(mu_);
  CountOpLocked(lock);
  if (!lock.owns_lock()) return SyncAction::kDrop;
  if (dead_ || !Matches(path)) return SyncAction::kSync;
  if (options_.fail_syncs || Chance(options_.sync_error_prob)) {
    *error = Status::IOError("injected directory fsync error: " + path);
    return SyncAction::kFail;
  }
  if (options_.drop_syncs || Chance(options_.sync_drop_prob)) {
    return SyncAction::kDrop;
  }
  return SyncAction::kSync;
}

void FaultInjectingEnv::DidSyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  // Callers pass directories with or without a trailing slash; Dirname
  // never produces one, so strip before comparing.
  std::string dir = path;
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  // Directory entries in `dir` are durable: creations commit, renames
  // whose destination lives here can no longer be rolled back.
  for (auto& entry : files_) {
    if (Dirname(entry.first) == dir) entry.second.pending_create = false;
  }
  pending_renames_.erase(
      std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                     [&](const PendingRename& r) {
                       return Dirname(r.to) == dir;
                     }),
      pending_renames_.end());
}

Status FaultInjectingEnv::OnRemove(const std::string& path) {
  std::unique_lock<std::mutex> lock(mu_);
  CountOpLocked(lock);
  if (!lock.owns_lock()) return Status::OK();
  files_.erase(path);
  return Status::OK();
}

}  // namespace wg
