#include "storage/spill.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "storage/serial.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace wg {

// ---------------------------------------------------------------- SpillLog

Result<std::unique_ptr<SpillLog>> SpillLog::Create(const std::string& path,
                                                   size_t buffer_bytes) {
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<SpillLog>(new SpillLog(
      path, std::move(file).value(), std::max<size_t>(buffer_bytes, 4096)));
}

SpillLog::SpillLog(std::string path, std::unique_ptr<RandomAccessFile> file,
                   size_t buffer_bytes)
    : path_(std::move(path)),
      file_(std::move(file)),
      buffer_bytes_(buffer_bytes) {
  buffer_.reserve(buffer_bytes_);
}

Status SpillLog::Append(const void* data, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  const char* p = static_cast<const char*>(data);
  // Fold the bytes into the per-block CRC table as they stream past.
  size_t left = n;
  const char* q = p;
  while (left > 0) {
    size_t room = kCrcBlockBytes - tail_block_bytes_;
    size_t take = std::min(left, room);
    tail_crc_ = Crc32(q, take, tail_crc_);
    tail_block_bytes_ += take;
    if (tail_block_bytes_ == kCrcBlockBytes) {
      block_crcs_.push_back(tail_crc_);
      tail_crc_ = 0;
      tail_block_bytes_ = 0;
    }
    q += take;
    left -= take;
  }
  buffer_.append(p, n);
  total_ += n;
  if (buffer_.size() >= buffer_bytes_) return FlushLocked();
  return Status::OK();
}

Status SpillLog::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  WG_RETURN_IF_ERROR(file_->Append(buffer_.data(), buffer_.size()));
  flushed_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Status SpillLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

uint64_t SpillLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t SpillLog::verified_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return verified_count_;
}

Status SpillLog::VerifyTouchedBlocksLocked(uint64_t offset, size_t n) const {
  uint64_t first = offset / kCrcBlockBytes;
  uint64_t last = (offset + n - 1) / kCrcBlockBytes;
  if (verified_.size() < block_crcs_.size()) {
    verified_.resize(block_crcs_.size(), 0);
  }
  for (uint64_t b = first; b <= last; ++b) {
    // Only complete, fully-flushed blocks are checkable; the tail is
    // verified later, once appends have sealed and flushed it.
    if (b >= block_crcs_.size() || verified_[b]) continue;
    uint64_t block_end = (b + 1) * kCrcBlockBytes;
    if (block_end > flushed_) continue;
    verify_scratch_.resize(kCrcBlockBytes);
    WG_RETURN_IF_ERROR(file_->Read(b * kCrcBlockBytes, kCrcBlockBytes,
                                   verify_scratch_.data()));
    if (Crc32(verify_scratch_.data(), kCrcBlockBytes, 0) != block_crcs_[b]) {
      return Status::Corruption(path_ + ": spill block " + std::to_string(b) +
                                " crc mismatch");
    }
    verified_[b] = 1;
    ++verified_count_;
  }
  return Status::OK();
}

Status SpillLog::ReadAt(uint64_t offset, size_t n, char* out) const {
  if (n == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (offset + n > total_) {
    return Status::OutOfRange(path_ + ": spill read past end");
  }
  WG_RETURN_IF_ERROR(VerifyTouchedBlocksLocked(offset, n));
  size_t got = 0;
  if (offset < flushed_) {
    size_t from_file =
        static_cast<size_t>(std::min<uint64_t>(n, flushed_ - offset));
    WG_RETURN_IF_ERROR(file_->Read(offset, from_file, out));
    got = from_file;
  }
  if (got < n) {
    std::memcpy(out + got, buffer_.data() + (offset + got - flushed_),
                n - got);
  }
  return Status::OK();
}

// ---------------------------------------------------------- SortedRunWriter

Result<std::unique_ptr<SortedRunWriter>> SortedRunWriter::Create(
    const std::string& path, size_t block_bytes) {
  WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<SortedRunWriter>(new SortedRunWriter(
      path, std::move(file).value(), std::max<size_t>(block_bytes, 4096)));
}

SortedRunWriter::SortedRunWriter(std::string path,
                                 std::unique_ptr<RandomAccessFile> file,
                                 size_t block_bytes)
    : path_(std::move(path)),
      file_(std::move(file)),
      block_bytes_(block_bytes) {
  block_.reserve(block_bytes_ + 16);
}

Status SortedRunWriter::Add(std::string_view record) {
  WG_CHECK(!finished_);
  if (!block_.empty() && block_.size() + record.size() + 10 > block_bytes_) {
    WG_RETURN_IF_ERROR(FlushBlock());
  }
  PutVarint64(&block_, record.size());
  block_.append(record.data(), record.size());
  if (block_.size() >= block_bytes_) return FlushBlock();
  return Status::OK();
}

Status SortedRunWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  std::string frame;
  frame.reserve(block_.size() + 8);
  PutFixed32(&frame, static_cast<uint32_t>(block_.size()));
  frame.append(block_);
  PutFixed32(&frame, Crc32(block_.data(), block_.size(), 0));
  WG_RETURN_IF_ERROR(file_->Append(frame.data(), frame.size()));
  block_.clear();
  return Status::OK();
}

Status SortedRunWriter::Finish() {
  WG_CHECK(!finished_);
  finished_ = true;
  return FlushBlock();
}

// ---------------------------------------------------------- SortedRunReader

Result<std::unique_ptr<SortedRunReader>> SortedRunReader::Open(
    const std::string& path) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<SortedRunReader>(
      new SortedRunReader(path, std::move(file).value()));
}

SortedRunReader::SortedRunReader(std::string path,
                                 std::unique_ptr<RandomAccessFile> file)
    : path_(std::move(path)), file_(std::move(file)) {}

Status SortedRunReader::LoadBlock() {
  char head[4];
  if (file_offset_ + 8 > file_->size()) {
    return Status::Corruption(path_ + ": truncated run block header");
  }
  WG_RETURN_IF_ERROR(file_->Read(file_offset_, 4, head));
  uint32_t payload_len = DecodeFixed32(head);
  if (file_offset_ + 8 + payload_len > file_->size()) {
    return Status::Corruption(path_ + ": truncated run block payload");
  }
  block_.resize(payload_len);
  WG_RETURN_IF_ERROR(file_->Read(file_offset_ + 4, payload_len,
                                 block_.data()));
  char foot[4];
  WG_RETURN_IF_ERROR(file_->Read(file_offset_ + 4 + payload_len, 4, foot));
  if (DecodeFixed32(foot) != Crc32(block_.data(), block_.size(), 0)) {
    return Status::Corruption(path_ + ": run block crc mismatch at offset " +
                              std::to_string(file_offset_));
  }
  file_offset_ += 8 + payload_len;
  block_pos_ = 0;
  return Status::OK();
}

Result<bool> SortedRunReader::Next(std::string* record) {
  if (block_pos_ >= block_.size()) {
    if (file_offset_ >= file_->size()) return false;
    WG_RETURN_IF_ERROR(LoadBlock());
  }
  uint64_t len = 0;
  size_t used = GetVarint64(block_.data() + block_pos_,
                            block_.size() - block_pos_, &len);
  if (used == 0 || block_pos_ + used + len > block_.size()) {
    return Status::Corruption(path_ + ": malformed record in run block");
  }
  record->assign(block_.data() + block_pos_ + used, len);
  block_pos_ += used + len;
  return true;
}

// ------------------------------------------------------------ ExternalSorter

ExternalSorter::ExternalSorter(std::string temp_prefix,
                               size_t memory_budget_bytes)
    : temp_prefix_(std::move(temp_prefix)),
      memory_budget_bytes_(std::max<size_t>(memory_budget_bytes, 1 << 20)) {}

ExternalSorter::~ExternalSorter() { RemoveRuns().ok(); }

Status ExternalSorter::RemoveRuns() {
  Status first = Status::OK();
  for (const auto& path : run_paths_) {
    Status s = RemoveFileIfExists(path);
    if (!s.ok() && first.ok()) first = s;
  }
  run_paths_.clear();
  return first;
}

Status ExternalSorter::Add(std::string_view record) {
  WG_CHECK(!merged_);
  records_.emplace_back(record);
  // Account the string header too, so millions of short records cannot
  // silently dwarf the nominal budget.
  buffered_bytes_ += record.size() + sizeof(std::string);
  if (buffered_bytes_ >= memory_budget_bytes_) return SpillRun();
  return Status::OK();
}

Status ExternalSorter::SpillRun() {
  if (records_.empty()) return Status::OK();
  std::sort(records_.begin(), records_.end());
  std::string path =
      temp_prefix_ + ".run-" + std::to_string(run_paths_.size());
  auto writer = SortedRunWriter::Create(path);
  if (!writer.ok()) return writer.status();
  run_paths_.push_back(path);
  ++runs_spilled_;
  for (const auto& rec : records_) {
    WG_RETURN_IF_ERROR(writer.value()->Add(rec));
  }
  WG_RETURN_IF_ERROR(writer.value()->Finish());
  records_.clear();
  records_.shrink_to_fit();
  buffered_bytes_ = 0;
  return Status::OK();
}

Status ExternalSorter::Merge(
    const std::function<Status(std::string_view)>& emit) {
  WG_CHECK(!merged_);
  merged_ = true;
  if (run_paths_.empty()) {
    // Everything fit in memory: plain sort, no disk round-trip. Records
    // are unique, so unstable sort is deterministic.
    std::sort(records_.begin(), records_.end());
    for (const auto& rec : records_) WG_RETURN_IF_ERROR(emit(rec));
    records_.clear();
    records_.shrink_to_fit();
    return Status::OK();
  }
  WG_RETURN_IF_ERROR(SpillRun());

  std::vector<std::unique_ptr<SortedRunReader>> readers;
  readers.reserve(run_paths_.size());
  for (const auto& path : run_paths_) {
    auto reader = SortedRunReader::Open(path);
    if (!reader.ok()) return reader.status();
    readers.push_back(std::move(reader).value());
  }

  // K-way merge; ties broken by run index so the order is total even if
  // a caller ever feeds duplicate records.
  struct Head {
    std::string record;
    size_t run;
  };
  auto greater = [](const Head& a, const Head& b) {
    if (a.record != b.record) return a.record > b.record;
    return a.run > b.run;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(
      greater);
  for (size_t i = 0; i < readers.size(); ++i) {
    std::string rec;
    auto got = readers[i]->Next(&rec);
    if (!got.ok()) return got.status();
    if (got.value()) heap.push(Head{std::move(rec), i});
  }
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    WG_RETURN_IF_ERROR(emit(head.record));
    std::string rec;
    auto got = readers[head.run]->Next(&rec);
    if (!got.ok()) return got.status();
    if (got.value()) heap.push(Head{std::move(rec), head.run});
  }
  return RemoveRuns();
}

// ------------------------------------------------------ SequentialFileReader

Result<std::unique_ptr<SequentialFileReader>> SequentialFileReader::Open(
    const std::string& path, size_t buffer_bytes) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<SequentialFileReader>(new SequentialFileReader(
      std::move(file).value(), std::max<size_t>(buffer_bytes, 4096)));
}

SequentialFileReader::SequentialFileReader(
    std::unique_ptr<RandomAccessFile> file, size_t buffer_bytes)
    : file_(std::move(file)), buffer_bytes_(buffer_bytes) {}

Status SequentialFileReader::Refill() {
  uint64_t file_off = consumed_;
  if (file_off >= file_->size()) {
    return Status::Corruption(file_->path() + ": read past end of file");
  }
  size_t n = static_cast<size_t>(
      std::min<uint64_t>(buffer_bytes_, file_->size() - file_off));
  buffer_.resize(n);
  WG_RETURN_IF_ERROR(file_->Read(file_off, n, buffer_.data()));
  buffer_pos_ = 0;
  return Status::OK();
}

Status SequentialFileReader::Read(size_t n, char* out) {
  size_t got = 0;
  while (got < n) {
    if (buffer_pos_ >= buffer_.size()) WG_RETURN_IF_ERROR(Refill());
    size_t take = std::min(n - got, buffer_.size() - buffer_pos_);
    std::memcpy(out + got, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    consumed_ += take;
    got += take;
  }
  if (checksum_ != nullptr && n > 0) checksum_->Update(out, n);
  return Status::OK();
}

Status SequentialFileReader::ReadByte(uint8_t* b) {
  if (buffer_pos_ >= buffer_.size()) WG_RETURN_IF_ERROR(Refill());
  char c = buffer_[buffer_pos_++];
  ++consumed_;
  if (checksum_ != nullptr) checksum_->Update(&c, 1);
  *b = static_cast<uint8_t>(c);
  return Status::OK();
}

Status SequentialFileReader::ReadVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    uint8_t byte = 0;
    WG_RETURN_IF_ERROR(ReadByte(&byte));
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption(file_->path() + ": malformed varint");
}

Status SequentialFileReader::ReadVarint32(uint32_t* v) {
  uint64_t wide = 0;
  WG_RETURN_IF_ERROR(ReadVarint64(&wide));
  if (wide > UINT32_MAX) {
    return Status::Corruption(file_->path() + ": varint32 overflow");
  }
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

}  // namespace wg
