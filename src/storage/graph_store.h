#ifndef WG_STORAGE_GRAPH_STORE_H_
#define WG_STORAGE_GRAPH_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/file.h"
#include "storage/serial.h"
#include "util/status.h"

// The on-disk home of S-Node's intranode and superedge graphs (Section 3.3
// of the paper): a sequence of bounded-size "index files", each holding
// whole encoded graphs back to back in the caller-chosen linear order (the
// paper places each intranode graph immediately before its outgoing
// superedge graphs so one seek loads a query's working set). A blob never
// straddles a file boundary, matching the paper's "a given intranode or
// superedge graph was completely located within a single file".
//
// The directory (blob id -> file, offset, length) is kept in memory and is
// charged to the representation's resident-index budget, like the paper's
// PageID/domain indexes.

namespace wg {

class GraphStore {
 public:
  struct Options {
    // The paper used 500 MB index files; our data sets are 1000x smaller,
    // so default to 512 KB to preserve the multi-file structure. At 1M+
    // pages the default produces thousands of files -- raise it (wgtool
    // build --max-file-size).
    uint64_t max_file_size = 512 * 1024;
    // Memory-map the store files on attach (OpenExisting/OpenFiles) so
    // blob reads are page-cache-backed pointer arithmetic instead of a
    // pread per blob. Ignored by Create (a store being appended cannot be
    // mapped); call MapForRead() once writing is done.
    bool mmap = false;
    // When a mapped blob is read cold, open an madvise(MADV_WILLNEED)
    // readahead window of this many bytes starting at the blob -- the
    // paper's layout places a query's working set immediately after, so
    // the kernel fetches it while we decode.
    uint64_t readahead_bytes = 256 * 1024;
    // Verify each blob's CRC32 on read. pread reads verify every time;
    // mapped reads verify on the first touch of each blob and cache the
    // verdict in a per-blob bitmap, so the warm zero-copy path stays one
    // relaxed bit test. A crc of 0 in the directory means "unknown"
    // (legacy entry) and is not checked.
    bool verify_checksums = true;
  };

  // Physical home of one blob, exposed so the version subsystem's
  // manifests can reference blobs across store generations (a manifest
  // maps dense per-generation blob ids onto an arbitrary set of pack
  // files, sharing unchanged blobs byte-identically between generations).
  struct BlobLocation {
    uint32_t file_index;
    uint64_t offset;
    uint32_t length;
    // CRC32 of the blob bytes (0 = unknown / legacy, not verified).
    uint32_t crc = 0;
  };

  // Creates a store writing files `<base_path>.000`, `<base_path>.001`, ...
  // Existing files with those names are truncated.
  static Result<std::unique_ptr<GraphStore>> Create(std::string base_path,
                                                    Options options);

  // Re-attaches to existing store files using a directory previously
  // produced by SerializeDirectory. The store is read-only in spirit
  // (appending after attach would corrupt the serialized directory of any
  // other reader and is rejected).
  static Result<std::unique_ptr<GraphStore>> OpenExisting(
      std::string base_path, Options options, SerialCursor* cursor);

  // Read-only store over an explicit set of files with an explicit
  // directory: blob i lives at directory[i] inside paths[file_index].
  // This is how a versioned snapshot generation reads: its manifest's
  // blob table spans pack files written by several earlier generations,
  // so blob ids stay dense and section-contiguous while the bytes are
  // shared with whichever generation first wrote them.
  static Result<std::unique_ptr<GraphStore>> OpenFiles(
      const std::vector<std::string>& paths,
      std::vector<BlobLocation> directory, Options options);
  static Result<std::unique_ptr<GraphStore>> OpenFiles(
      const std::vector<std::string>& paths,
      std::vector<BlobLocation> directory);

  // Appends the blob directory to *payload (varints), for the owner's
  // metadata file.
  void SerializeDirectory(std::string* payload) const;

  // Appends a blob in linear order; returns its dense id (0, 1, 2, ...).
  // Rejected on a store attached via OpenExisting.
  Result<uint32_t> Append(const std::vector<uint8_t>& blob);

  // Reads blob `id` into *out.
  Status ReadBlob(uint32_t id, std::vector<uint8_t>* out) const;

  // Reads the consecutive blobs [first, last] -- appended back to back, so
  // within one store file this is a single sequential read (one seek).
  // out[i] receives blob first+i.
  Status ReadBlobRange(uint32_t first, uint32_t last,
                       std::vector<std::vector<uint8_t>>* out) const;

  // A borrowed view of one blob's bytes inside a mapped store file; valid
  // for the life of the store. data is never null for length > 0.
  struct BlobSpan {
    const uint8_t* data = nullptr;
    uint32_t length = 0;
  };

  // True once MapForRead() ran; only then can the span reads below
  // succeed. Individual files may still be demoted to pread (see
  // FileQuarantined) -- spans into those fail with Unavailable and the
  // caller falls back to ReadBlob.
  bool mapped() const { return mapped_; }

  // Maps all files read-only. Valid on any store that is done being
  // written (OpenExisting/OpenFiles attach, or a Create store after its
  // last Append); appending afterwards is rejected. A file whose on-disk
  // size is shorter than the directory-recorded blob extents (truncated
  // behind our back) is not mapped: it is quarantined to the pread path
  // instead of serving out-of-bounds spans, and wg_integrity_mmap_fallbacks
  // is bumped. MapForRead itself only fails on invariant violations, not
  // on per-file fallbacks.
  Status MapForRead();

  // Points *span at blob `id` inside the mapping (zero-copy; no syscall).
  // On the first touch of a readahead window this also issues
  // madvise(MADV_WILLNEED) for options.readahead_bytes following bytes.
  // With verify_checksums the first touch of each blob CRC-checks the
  // mapped bytes under a SIGBUS guard: a fault quarantines the file
  // (returns Unavailable -- retry via ReadBlob), a mismatch returns
  // Corruption. Fails unless mapped().
  Status ReadBlobSpan(uint32_t id, BlobSpan* span) const;

  // True when `file_index` is served by pread only: its mapping was
  // refused at MapForRead (short file) or revoked after a SIGBUS.
  bool FileQuarantined(uint32_t file_index) const {
    return quarantined_[file_index]->load(std::memory_order_acquire);
  }
  // Demotes a file to the pread path (idempotent).
  void QuarantineFile(uint32_t file_index) const;

  // pread-based CRC verification of one blob, bypassing any mapping (the
  // scrub path). OK for empty or crc-unknown blobs.
  Status VerifyBlob(uint32_t id) const;

  // fsyncs every store file. Writers must call this before publishing a
  // manifest that references the blobs. (Logically const: nothing about
  // the store's state changes, only its durability.)
  Status SyncAll() const;

  // madvise over the physical byte ranges of blobs [first, last] (the
  // decode-ahead executor and the warmer use kWillNeed/kSequential ahead
  // of decoding; kDontNeed drops residency). No-op when not mapped.
  void AdviseBlobs(uint32_t first, uint32_t last,
                   RandomAccessFile::Advice advice) const;

  // Best-effort page-cache eviction of every store file (cold-read
  // benchmarks; see RandomAccessFile::EvictFromPageCache).
  void EvictFromPageCache() const;

  // Bytes served through ReadBlobSpan (mapped, zero-copy reads) -- kept
  // separate from the pread counters so exposition can tell demand-paged
  // I/O from syscall I/O.
  uint64_t mapped_reads() const {
    return mapped_reads_.load(std::memory_order_relaxed);
  }
  uint64_t mapped_bytes() const {
    return mapped_bytes_.load(std::memory_order_relaxed);
  }

  size_t num_blobs() const { return directory_.size(); }
  size_t num_files() const { return files_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t blob_size(uint32_t id) const { return directory_[id].length; }
  uint32_t blob_crc(uint32_t id) const { return directory_[id].crc; }

  // Physical placement of blob `id` (for manifest composition).
  BlobLocation Location(uint32_t id) const {
    const BlobRef& ref = directory_[id];
    return {ref.file_index, ref.offset, ref.length, ref.crc};
  }
  const std::string& FilePath(uint32_t file_index) const {
    return files_[file_index]->path();
  }

  // In-memory size of the directory (a resident index).
  size_t DirectoryMemoryUsage() const {
    return directory_.size() * sizeof(BlobRef);
  }

  // Physical read count across all files (for I/O reporting).
  uint64_t read_ops() const;
  // Disk-model seeks / transferred bytes across all files.
  uint64_t seek_ops() const;
  uint64_t transferred_bytes() const;

 private:
  struct BlobRef {
    uint32_t file_index;
    uint32_t length;
    uint64_t offset;
    uint32_t crc;
  };

  GraphStore(std::string base_path, Options options)
      : base_path_(std::move(base_path)), options_(options) {}

  Status OpenNextFile();
  void AddFileSlot();
  // Mapped-read first-touch verification; returns OK when the blob's crc
  // checked out (or already did), Corruption on mismatch, Unavailable
  // after a SIGBUS (file quarantined). Requires mapped().
  Status EnsureMappedBlobVerified(uint32_t id, const BlobRef& ref) const;

  std::string base_path_;
  Options options_;
  std::vector<std::unique_ptr<RandomAccessFile>> files_;
  std::vector<BlobRef> directory_;
  uint64_t total_bytes_ = 0;
  bool read_only_ = false;
  bool mapped_ = false;
  mutable std::atomic<uint64_t> mapped_reads_{0};
  mutable std::atomic<uint64_t> mapped_bytes_{0};
  // Last readahead window opened per file (one word per file, relaxed:
  // duplicate WILLNEEDs are harmless, missing one costs a demand fault).
  mutable std::vector<std::unique_ptr<std::atomic<uint64_t>>> readahead_edge_;
  // Per-file pread-only demotion flags (parallel to files_).
  mutable std::vector<std::unique_ptr<std::atomic<bool>>> quarantined_;
  // Per-blob first-touch verification verdicts for the mapped path, one
  // bit each; allocated by MapForRead. ok/bad are mutually exclusive.
  mutable std::unique_ptr<std::atomic<uint64_t>[]> verified_ok_;
  mutable std::unique_ptr<std::atomic<uint64_t>[]> verified_bad_;
};

}  // namespace wg

#endif  // WG_STORAGE_GRAPH_STORE_H_
