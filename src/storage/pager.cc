#include "storage/pager.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"

namespace wg {

void PagerStats::Register(obs::MetricRegistry& registry,
                          const obs::Labels& labels) {
  hits.Bind(registry, "wg_pager_hits_total", labels, "Buffer-pool hits");
  misses.Bind(registry, "wg_pager_misses_total", labels,
              "Buffer-pool demand misses (physical page reads)");
  evictions.Bind(registry, "wg_pager_evictions_total", labels,
                 "Frames evicted to make room");
  writes.Bind(registry, "wg_pager_writes_total", labels,
              "Physical page writes");
  readahead.Bind(registry, "wg_pager_readahead_total", labels,
                 "Pages loaded speculatively by Readahead()");
}

PageHandle::PageHandle(Pager* pager, uint32_t frame)
    : pager_(pager), frame_(frame) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pager_(other.pager_), frame_(other.frame_) {
  other.pager_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    frame_ = other.frame_;
    other.pager_ = nullptr;
  }
  return *this;
}

void PageHandle::Release() {
  if (pager_ != nullptr) {
    pager_->Unpin(frame_);
    pager_ = nullptr;
  }
}

char* PageHandle::data() { return pager_->frames_[frame_].data.get(); }
const char* PageHandle::data() const {
  return pager_->frames_[frame_].data.get();
}

void PageHandle::MarkDirty() { pager_->frames_[frame_].dirty = true; }

Pager::Pager(std::unique_ptr<RandomAccessFile> file, size_t num_frames)
    : file_(std::move(file)) {
  num_pages_ = file_->size() / kPageSize;
  frames_.resize(num_frames);
  for (uint32_t i = 0; i < num_frames; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(i);
  }
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           size_t budget_bytes) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  size_t num_frames = std::max<size_t>(8, budget_bytes / kPageSize);
  auto pager =
      std::unique_ptr<Pager>(new Pager(std::move(file).value(), num_frames));
  // Registers immortal {file,instance} series in the default registry
  // (see the series-lifetime note in obs/metrics.h): fine for a serving
  // process that opens its stores once, but a loop that churns pagers
  // grows the exposition without bound.
  pager->stats_.Register(
      obs::MetricRegistry::Default(),
      {{"file", path},
       {"instance", std::to_string(obs::NextInstanceId())}});
  return pager;
}

Result<PageNum> Pager::Allocate() {
  PageNum page = static_cast<PageNum>(num_pages_);
  ++num_pages_;
  // Materialize the page lazily: load it into a frame zeroed, dirty, so the
  // file grows on eviction/flush.
  WG_ASSIGN_OR_RETURN(uint32_t frame, PinFrame(page));
  std::memset(frames_[frame].data.get(), 0, kPageSize);
  frames_[frame].dirty = true;
  Unpin(frame);
  return page;
}

Result<PageHandle> Pager::Fetch(PageNum page) {
  if (page >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " beyond file end");
  }
  WG_ASSIGN_OR_RETURN(uint32_t frame, PinFrame(page));
  return PageHandle(this, frame);
}

Result<uint32_t> Pager::PinFrame(PageNum page) {
  auto it = frame_of_page_.find(page);
  if (it != frame_of_page_.end()) {
    uint32_t frame = it->second;
    ++stats_.hits;
    if (frames_[frame].pins++ == 0) {
      // Remove from the eviction list while pinned.
      auto pos = lru_pos_.find(frame);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
    }
    return frame;
  }
  ++stats_.misses;
  // Traced as the bottom of the request chain: service request -> repr
  // access -> (cache miss ->) pager load. Covers eviction write-back and
  // the physical read.
  obs::Span span("pager.load_page", "storage");
  span.AddArg("page", page);
  return LoadFrame(page);
}

Result<uint32_t> Pager::LoadFrame(PageNum page) {
  if (free_frames_.empty()) {
    WG_RETURN_IF_ERROR(EvictOne());
  }
  if (free_frames_.empty()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  uint32_t frame = free_frames_.back();
  free_frames_.pop_back();
  Frame& f = frames_[frame];
  f.page = page;
  f.pins = 1;
  f.dirty = false;
  uint64_t offset = static_cast<uint64_t>(page) * kPageSize;
  if (offset + kPageSize <= file_->size()) {
    WG_RETURN_IF_ERROR(file_->Read(offset, kPageSize, f.data.get()));
  } else {
    // Freshly allocated page not yet written.
    std::memset(f.data.get(), 0, kPageSize);
  }
  frame_of_page_[page] = frame;
  return frame;
}

Status Pager::Readahead(PageNum first, size_t count) {
  // Half the pool is the ceiling for speculative residency; with the
  // 8-frame minimum there is always at least one frame to spend.
  count = std::min(count, frames_.size() / 2);
  for (size_t i = 0; i < count; ++i) {
    PageNum page = first + static_cast<PageNum>(i);
    if (page >= num_pages_) break;
    if (frame_of_page_.find(page) != frame_of_page_.end()) {
      continue;  // already resident: neither a hit nor a readahead
    }
    auto frame = LoadFrame(page);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kResourceExhausted) {
        break;  // all frames pinned
      }
      return frame.status();
    }
    ++stats_.readahead;
    // Straight to the LRU: readahead pages are as evictable as any other
    // unpinned frame, so mistaken speculation costs one eviction at most.
    Unpin(frame.value());
  }
  return Status::OK();
}

void Pager::Unpin(uint32_t frame) {
  Frame& f = frames_[frame];
  WG_DCHECK(f.pins > 0);
  if (--f.pins == 0) {
    lru_.push_front(frame);
    lru_pos_[frame] = lru_.begin();
  }
}

void Pager::Touch(uint32_t frame) {
  auto pos = lru_pos_.find(frame);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_.push_front(frame);
    lru_pos_[frame] = lru_.begin();
  }
}

Status Pager::EvictOne() {
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool: nothing evictable");
  }
  uint32_t frame = lru_.back();
  lru_.pop_back();
  lru_pos_.erase(frame);
  Frame& f = frames_[frame];
  if (f.dirty) {
    uint64_t offset = static_cast<uint64_t>(f.page) * kPageSize;
    WG_RETURN_IF_ERROR(file_->Write(offset, f.data.get(), kPageSize));
    ++stats_.writes;
  }
  frame_of_page_.erase(f.page);
  f.page = kInvalidPageNum;
  free_frames_.push_back(frame);
  ++stats_.evictions;
  return Status::OK();
}

Status Pager::DropUnpinned() {
  WG_RETURN_IF_ERROR(Flush());
  while (!lru_.empty()) {
    WG_RETURN_IF_ERROR(EvictOne());
  }
  return Status::OK();
}

Status Pager::Flush() {
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page != kInvalidPageNum && f.dirty) {
      uint64_t offset = static_cast<uint64_t>(f.page) * kPageSize;
      WG_RETURN_IF_ERROR(file_->Write(offset, f.data.get(), kPageSize));
      f.dirty = false;
      ++stats_.writes;
    }
  }
  return Status::OK();
}

}  // namespace wg
