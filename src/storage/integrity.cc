#include "storage/integrity.h"

namespace wg {

IntegrityCounters& IntegrityCounters::Get() {
  static IntegrityCounters* counters = [] {
    auto* c = new IntegrityCounters();
    auto& reg = obs::MetricRegistry::Default();
    c->checksum_failures.Bind(
        reg, "wg_integrity_checksum_failures_total", {},
        "Blob reads that failed CRC verification");
    c->sigbus_faults.Bind(reg, "wg_integrity_sigbus_total", {},
                          "SIGBUS faults caught on mapped blob reads");
    c->mmap_fallbacks.Bind(reg, "wg_integrity_mmap_fallbacks_total", {},
                           "Store files demoted from mmap to pread");
    c->quarantined_sections.Bind(reg, "wg_integrity_quarantined_sections", {},
                                 "S-Node sections quarantined after corruption");
    return c;
  }();
  return *counters;
}

}  // namespace wg
