#ifndef WG_STORAGE_PAGER_H_
#define WG_STORAGE_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/file.h"
#include "util/status.h"

// Page-granular storage with an LRU buffer pool. This is the substrate of
// the "relational database" baseline (the paper used PostgreSQL with its
// B-tree indexes under a fixed memory cap; our mini engine reproduces that
// access path: index lookup -> heap fetch -> buffer pool hit or disk read).
//
// All pages live in a single file; components (B+tree, heap file) allocate
// pages from the shared Pager and address them by PageNum.

namespace wg {

inline constexpr size_t kPageSize = 8192;
using PageNum = uint32_t;
inline constexpr PageNum kInvalidPageNum = UINT32_MAX;

// obs::Counter keeps the counters data-race-free: page loads bump them on
// the pager's (single structural) thread while monitoring threads --
// wgserve metric dumps, test snapshots -- read them concurrently. The
// pager's structural state itself is still single-threaded (see server/
// for the concurrent path, which goes through SNodeRepr's sharded cache
// instead). Open() registers each instance's counters with the default
// metric registry (wg_pager_*_total{file=...,instance=...}).
struct PagerStats {
  obs::Counter hits;
  obs::Counter misses;     // demand misses => physical reads on the hot path
  obs::Counter evictions;
  obs::Counter writes;     // physical page writes
  obs::Counter readahead;  // pages loaded by Readahead(), not demand misses

  // Binds the counters to registry-backed series; Reset-style whole-struct
  // assignment afterwards zeroes the cells but keeps the binding.
  void Register(obs::MetricRegistry& registry, const obs::Labels& labels);
};

class Pager;

// Pins one buffer frame for the lifetime of the handle. Holding a handle
// guarantees the frame is not evicted; MarkDirty schedules write-back.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(Pager* pager, uint32_t frame);
  ~PageHandle();
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  char* data();
  const char* data() const;
  void MarkDirty();
  bool valid() const { return pager_ != nullptr; }
  void Release();

 private:
  Pager* pager_ = nullptr;
  uint32_t frame_ = 0;
};

class Pager {
 public:
  // Opens/creates the backing file with a buffer budget in bytes (rounded
  // down to whole frames, minimum 8 frames so the B+tree can always pin a
  // root-to-leaf path).
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             size_t budget_bytes);

  // Appends a zeroed page to the file; returns its number.
  Result<PageNum> Allocate();

  // Pins the page into a frame (reading from disk on a miss).
  Result<PageHandle> Fetch(PageNum page);

  // Best-effort: loads up to `count` pages starting at `first` into
  // unpinned frames so subsequent Fetches hit. Loads are charged to
  // stats().readahead, keeping speculative I/O (overflow-chain walks,
  // warmers) distinguishable from demand misses in the exposition. Clipped
  // to the file end and to half the pool so a burst cannot wipe the
  // demand-paged working set; stops quietly once every frame is pinned.
  Status Readahead(PageNum first, size_t count);

  // Writes back all dirty frames.
  Status Flush();

  // Flushes, then drops every unpinned frame (cold-cache experiments).
  Status DropUnpinned();

  size_t num_pages() const { return num_pages_; }
  const PagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PagerStats(); }

  // Bytes of buffer-pool memory (frames * page size).
  size_t memory_budget() const { return frames_.size() * kPageSize; }

  // Backing file, for disk-model accounting.
  const RandomAccessFile& file() const { return *file_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageNum page = kInvalidPageNum;
    uint32_t pins = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  Pager(std::unique_ptr<RandomAccessFile> file, size_t num_frames);

  Result<uint32_t> PinFrame(PageNum page);
  Result<uint32_t> LoadFrame(PageNum page);  // miss path shared with Readahead
  void Unpin(uint32_t frame);
  void Touch(uint32_t frame);
  Status EvictOne();

  std::unique_ptr<RandomAccessFile> file_;
  size_t num_pages_ = 0;
  std::vector<Frame> frames_;
  std::unordered_map<PageNum, uint32_t> frame_of_page_;
  std::list<uint32_t> lru_;  // front = most recent; only unpinned listed
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> lru_pos_;
  std::vector<uint32_t> free_frames_;
  PagerStats stats_;
};

}  // namespace wg

#endif  // WG_STORAGE_PAGER_H_
