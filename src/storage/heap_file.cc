#include "storage/heap_file.h"

#include <cstring>

#include "util/coding.h"

namespace wg {

namespace {

// Data page layout:
//   [0]     type = 3
//   [2:4]   slot count (u16)
//   [4:8]   free-space offset (u32), payload grows up from 8
//   slots grow down from the page end: slot i = (offset u32, len u32)
//
// Overflow page layout:
//   [0]     type = 4
//   [4:8]   next overflow page (u32, kInvalidPageNum terminates)
//   [8:12]  bytes used in this page (u32)
//   data at 12.
//
// A row's slot payload starts with a 1-byte flag: 0 = inline bytes follow;
// 1 = u32 total length + u32 first overflow page follow.

constexpr size_t kDataHeader = 8;
constexpr size_t kSlotSize = 8;
constexpr size_t kOverflowHeader = 12;
constexpr size_t kOverflowCapacity = kPageSize - kOverflowHeader;

uint16_t SlotCount(const char* p) {
  uint16_t c;
  std::memcpy(&c, p + 2, 2);
  return c;
}
void SetSlotCount(char* p, uint16_t c) { std::memcpy(p + 2, &c, 2); }

uint32_t FreeOffset(const char* p) { return DecodeFixed32(p + 4); }
void SetFreeOffset(char* p, uint32_t v) { EncodeFixed32(p + 4, v); }

size_t SlotPos(uint16_t i) { return kPageSize - (i + 1) * kSlotSize; }

void ReadSlot(const char* p, uint16_t i, uint32_t* offset, uint32_t* len) {
  *offset = DecodeFixed32(p + SlotPos(i));
  *len = DecodeFixed32(p + SlotPos(i) + 4);
}

void WriteSlot(char* p, uint16_t i, uint32_t offset, uint32_t len) {
  EncodeFixed32(p + SlotPos(i), offset);
  EncodeFixed32(p + SlotPos(i) + 4, len);
}

size_t FreeBytes(const char* p) {
  return SlotPos(SlotCount(p)) - FreeOffset(p);
}

// Inline payloads must leave room for flag + slot entry on a fresh page.
constexpr size_t kMaxInline = kPageSize - kDataHeader - kSlotSize - 1 - 64;

}  // namespace

Result<std::unique_ptr<HeapFile>> HeapFile::Create(Pager* pager) {
  std::unique_ptr<HeapFile> heap(new HeapFile(pager));
  WG_RETURN_IF_ERROR(heap->StartNewDataPage());
  return heap;
}

Status HeapFile::StartNewDataPage() {
  WG_ASSIGN_OR_RETURN(PageNum page, pager_->Allocate());
  WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(page));
  h.data()[0] = 3;
  SetSlotCount(h.data(), 0);
  SetFreeOffset(h.data(), kDataHeader);
  h.MarkDirty();
  current_ = page;
  return Status::OK();
}

Result<RowId> HeapFile::Append(const std::string& payload) {
  std::string record;
  if (payload.size() <= kMaxInline) {
    record.push_back('\0');
    record.append(payload);
  } else {
    // Spill to an overflow chain, writing pages front-to-back.
    PageNum first = kInvalidPageNum;
    PageNum prev = kInvalidPageNum;
    size_t pos = 0;
    while (pos < payload.size()) {
      WG_ASSIGN_OR_RETURN(PageNum page, pager_->Allocate());
      size_t take = std::min(kOverflowCapacity, payload.size() - pos);
      {
        WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(page));
        h.data()[0] = 4;
        EncodeFixed32(h.data() + 4, kInvalidPageNum);
        EncodeFixed32(h.data() + 8, static_cast<uint32_t>(take));
        std::memcpy(h.data() + kOverflowHeader, payload.data() + pos, take);
        h.MarkDirty();
      }
      if (prev != kInvalidPageNum) {
        WG_ASSIGN_OR_RETURN(PageHandle ph, pager_->Fetch(prev));
        EncodeFixed32(ph.data() + 4, page);
        ph.MarkDirty();
      } else {
        first = page;
      }
      prev = page;
      pos += take;
    }
    record.push_back('\1');
    PutFixed32(&record, static_cast<uint32_t>(payload.size()));
    PutFixed32(&record, first);
  }

  // Place the record in the current data page, rolling over if full.
  for (int attempt = 0; attempt < 2; ++attempt) {
    WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(current_));
    char* p = h.data();
    if (FreeBytes(p) >= record.size() + kSlotSize) {
      uint16_t slot = SlotCount(p);
      uint32_t offset = FreeOffset(p);
      std::memcpy(p + offset, record.data(), record.size());
      WriteSlot(p, slot, offset, static_cast<uint32_t>(record.size()));
      SetFreeOffset(p, offset + static_cast<uint32_t>(record.size()));
      SetSlotCount(p, static_cast<uint16_t>(slot + 1));
      h.MarkDirty();
      ++num_rows_;
      return (static_cast<RowId>(current_) << 16) | slot;
    }
    h.Release();
    WG_RETURN_IF_ERROR(StartNewDataPage());
  }
  return Status::Internal("heap: record does not fit a fresh page");
}

Status HeapFile::Read(RowId row, std::string* payload) {
  PageNum page = static_cast<PageNum>(row >> 16);
  uint16_t slot = static_cast<uint16_t>(row & 0xffff);
  WG_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(page));
  const char* p = h.data();
  if (p[0] != 3 || slot >= SlotCount(p)) {
    return Status::Corruption("heap: bad row id");
  }
  uint32_t offset, len;
  ReadSlot(p, slot, &offset, &len);
  if (len == 0 || offset + len > kPageSize) {
    return Status::Corruption("heap: bad slot");
  }
  if (p[offset] == '\0') {
    payload->assign(p + offset + 1, len - 1);
    return Status::OK();
  }
  if (len != 1 + 4 + 4) return Status::Corruption("heap: bad overflow stub");
  uint32_t total = DecodeFixed32(p + offset + 1);
  PageNum next = DecodeFixed32(p + offset + 5);
  h.Release();
  payload->clear();
  payload->reserve(total);
  // Overflow pages are allocated back-to-back at Append time, so the
  // chain is (almost always) contiguous: prime the pool in one pass.
  // Best-effort -- the walk below still demand-faults anything missed.
  WG_RETURN_IF_ERROR(pager_->Readahead(
      next, (total + kOverflowCapacity - 1) / kOverflowCapacity));
  while (next != kInvalidPageNum && payload->size() < total) {
    WG_ASSIGN_OR_RETURN(PageHandle oh, pager_->Fetch(next));
    const char* op = oh.data();
    if (op[0] != 4) return Status::Corruption("heap: bad overflow page");
    uint32_t used = DecodeFixed32(op + 8);
    if (used > kOverflowCapacity) {
      return Status::Corruption("heap: bad overflow length");
    }
    payload->append(op + kOverflowHeader, used);
    next = DecodeFixed32(op + 4);
  }
  if (payload->size() != total) {
    return Status::Corruption("heap: truncated overflow chain");
  }
  return Status::OK();
}

}  // namespace wg
