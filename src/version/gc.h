#ifndef WG_VERSION_GC_H_
#define WG_VERSION_GC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

// Pack-file garbage collection for the versioned snapshot store.
//
// Generations share unchanged blobs by pointing into older generations'
// pack files, so a pack stays live for as long as ANY blob of the live
// manifest (the one CURRENT names) references it. Once a compaction has
// re-encoded everything a pack held, the pack is garbage: still on disk,
// still listed in the manifest's append-only `files` table, but indexed
// by no blob. CollectGarbage finds those packs and (in apply mode)
// unlinks them.
//
// Safety rules, in order of precedence:
//   * Only `gen-*` pack files are ever candidates. CURRENT, MANIFEST-*,
//     deltas.log, and anything unrecognized are never touched.
//   * A pack named by any live-manifest blob's file_index is referenced
//     and never a candidate, even in apply mode.
//   * Dry-run (the default) deletes nothing; it only reports.
//
// Deleting a pack leaves its name behind in the manifest's `files` table
// (manifests are immutable); the next OpenStore recreates it as an empty
// placeholder, which no blob reads. The wg_version_gc_* counters record
// scanned/candidate/removed packs and reclaimed bytes.

namespace wg::version {

struct GcOptions {
  // false = dry run: report candidates, delete nothing.
  bool apply = false;
};

struct GcReport {
  uint64_t packs_scanned = 0;     // gen-* files seen in the directory
  uint64_t packs_referenced = 0;  // pinned by a live-manifest blob
  uint64_t packs_removed = 0;     // actually unlinked (apply mode)
  uint64_t bytes_reclaimable = 0;  // total size of candidates
  uint64_t bytes_reclaimed = 0;    // bytes of packs actually unlinked
  std::vector<std::string> candidates;  // relative names, sorted
};

// Scans snapshot directory `dir` against the manifest CURRENT names.
// Fails without touching anything if CURRENT or the manifest is
// unreadable. Safe to run against a directory another process is
// serving from: referenced packs are never candidates, and readers of
// older generations keep their already-open file descriptors.
Status CollectGarbage(const std::string& dir, const GcOptions& options,
                      GcReport* report);

}  // namespace wg::version

#endif  // WG_VERSION_GC_H_
