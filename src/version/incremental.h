#ifndef WG_VERSION_INCREMENTAL_H_
#define WG_VERSION_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "snode/partition.h"
#include "snode/refinement.h"
#include "snode/snode_repr.h"
#include "version/manifest.h"
#include "version/overlay.h"

// Incremental S-Node maintenance: given a base generation and a delta
// overlay, produce the next generation's partition, mark the supernodes
// whose disk sections must be re-encoded, and assemble the generation's
// manifest -- re-encoding only dirty sections and sharing every other
// blob byte-identically with the base generation.
//
// The partition is maintained *deterministically* (no clustered split, no
// RNG), which is what gives the byte-identity contract its meaning:
//
//   * Old elements keep their membership and their URL-sorted page order
//     verbatim. A removed page is a tombstone -- it stays in its element
//     with empty adjacency -- so the supernode-contiguous numbering of
//     every old page is unchanged across generations.
//   * New pages are grouped by domain (the paper's P0 rule), split by the
//     URL-prefix rule alone (RefineNewElement), and appended as new
//     elements in domain order. Clustered split needs global supernode
//     adjacency context, so it is deferred to the next full rebuild --
//     the classic "incremental maintenance plus periodic rebuild" split.
//
// Dirty rules (conservative -- re-encoding a section whose bytes end up
// unchanged is harmless, because the content-hash match makes it share
// instead of write):
//   1. the element of any page with out-link edits, any tombstoned page,
//      and every new element;
//   2. any element with a base superedge INTO a tombstoned page's element
//      (its pages may have lost links landing on the tombstone; without a
//      resident transpose this is the cheapest sound overapproximation).
//
// Every page whose effective adjacency differs from the base is covered:
// local edits by rule 1; links lost into a tombstone by rule 2 (the base
// superedge owner(p) -> owner(t) must exist for p to have linked t), or
// by rule 1 when p and t share an element.

namespace wg::version {

struct MaintainedPartition {
  Partition partition;
  size_t num_old_elements = 0;
  std::vector<uint8_t> dirty;  // per element; 1 = re-encode its section
  // Domain of each appended element (parallel to elements past
  // num_old_elements), for the new generation's domain index.
  std::vector<std::string> new_element_domains;

  size_t dirty_count() const {
    size_t n = 0;
    for (uint8_t d : dirty) n += d;
    return n;
  }
};

// Deterministic partition maintenance as described above. Fills
// stats->refine_seconds (maintenance wall-clock) and final_elements when
// stats is non-null.
MaintainedPartition MaintainPartition(const SNodeRepr& base,
                                      const DeltaOverlay& overlay,
                                      const RefinementOptions& options,
                                      RefinementStats* stats = nullptr);

// Assembles generation `generation` from (base, overlay, maintained):
// re-encodes dirty sections through EncodeSupernodeSection over the
// overlay-merged adjacency, writes only blobs whose content hash is not
// already present in the base generation into a fresh pack
// (`<dir>/gen-%06u.NNN`), and shares everything else. Returns the new
// manifest (not yet published -- the SnapshotManager writes and points
// CURRENT at it). `num_edges` is the overlay's exact edge count;
// `log_applied` the log position this generation folds in. Fills
// stats->encode/layout/total_seconds, comparable per phase with a full
// build's numbers.
Result<Manifest> BuildIncrementalGeneration(
    SNodeRepr& base, const Manifest& base_manifest,
    const DeltaOverlay& overlay, const MaintainedPartition& maintained,
    uint64_t generation, uint64_t log_applied, uint64_t num_edges,
    const std::string& dir, const SNodeBuildOptions& options,
    RefinementStats* stats = nullptr);

}  // namespace wg::version

#endif  // WG_VERSION_INCREMENTAL_H_
