#ifndef WG_VERSION_MANIFEST_H_
#define WG_VERSION_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "snode/snode_repr.h"
#include "storage/graph_store.h"
#include "version/content_hash.h"

// A generation manifest: the complete, immutable description of one
// published snapshot generation. It names the pack files the generation
// reads (its own plus any inherited from earlier generations), maps every
// dense blob id to a (file, offset, length, content hash) location, and
// embeds the serialized resident state (permutations + supernode graph).
// Publication is LevelDB-style: write MANIFEST-%06u, then atomically point
// CURRENT at it -- a reader either sees the old complete generation or the
// new complete generation, never a mix.
//
// Blob ids stay dense and section-contiguous within each generation (the
// S-Node read path's section prefetch depends on that), while the
// *locations* they map to are free to point into older generations' pack
// files: that is how an unchanged supernode section is shared byte-for-
// byte across generations instead of being rewritten.

namespace wg::version {

struct ManifestBlob {
  uint32_t file_index = 0;  // into Manifest::files
  uint64_t offset = 0;
  uint32_t length = 0;
  uint32_t crc = 0;  // CRC32 of the blob's bytes (verify-on-read key)
  ContentHash hash;  // of the blob's bytes (the sharing key)
};

struct Manifest {
  uint64_t generation = 0;
  // Delta-log records folded into this generation; replay after a crash
  // (or an overlay for live reads) starts at this record.
  uint64_t log_applied = 0;
  // Pack file names, relative to the snapshot directory. Grows
  // append-only across generations: a child manifest keeps the parent's
  // list (so shared blobs' file_index values survive verbatim) and
  // appends its own packs.
  std::vector<std::string> files;
  // Dense blob id -> physical location + content hash.
  std::vector<ManifestBlob> blobs;
  // How the generation was assembled (observability; also what the
  // sharing tests assert on).
  uint64_t blobs_shared = 0;
  uint64_t blobs_written = 0;
  // Serialized SNodeResidentState payload (snode/snode_repr.h).
  std::string resident;

  Status WriteTo(const std::string& path) const;
  static Result<Manifest> ReadFrom(const std::string& path);

  // Opens the (read-only) store this manifest describes; `dir` is the
  // snapshot directory the file names are relative to. `options` controls
  // the read path (mmap, readahead window); sizing fields are ignored for
  // a read-only open.
  Result<std::unique_ptr<GraphStore>> OpenStore(const std::string& dir) const;
  Result<std::unique_ptr<GraphStore>> OpenStore(
      const std::string& dir, const GraphStore::Options& options) const;

  Result<SNodeResidentState> ParseResident() const;
};

}  // namespace wg::version

#endif  // WG_VERSION_MANIFEST_H_
