#ifndef WG_VERSION_SNAPSHOT_H_
#define WG_VERSION_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "snode/snode_repr.h"
#include "version/delta_log.h"
#include "version/manifest.h"
#include "version/overlay.h"

// The versioned snapshot store: a directory of immutable, content-hash-
// shared generations plus one write-ahead delta log, with LevelDB-style
// atomic publication.
//
//   <dir>/gen-000000.000 ...   pack files (never modified once written)
//   <dir>/MANIFEST-000000 ...  one manifest per generation
//   <dir>/CURRENT              name of the live manifest (swapped by
//                              write-temp-then-rename, the atomic flip)
//   <dir>/deltas.log           CRC-framed crawl deltas (version/delta_log.h)
//
// Lifecycle: Create() runs a full S-Node build over the base crawl and
// publishes generation 0. Crawl increments arrive via AppendDeltas()
// (durable in the log before acknowledgement). Readers between
// compactions see base-plus-deltas through BuildPendingOverlay() +
// OverlayRepresentation. Compact() folds the unapplied log suffix into
// generation N+1 incrementally (version/incremental.h), re-encoding only
// dirty sections and sharing the rest byte-identically, then atomically
// repoints CURRENT.
//
// Concurrency: current() hands out shared_ptr<const Generation>; a reader
// (QueryService request) copies it once and keeps querying that immutable
// generation while Compact() publishes the next -- no stop-the-world. An
// old generation's repr, store, and pinned cache views stay alive until
// the last reader's shared_ptr drops. Log appends and compactions are
// serialized on an admin mutex; the published-generation pointer has its
// own mutex so readers never wait on a compaction.

namespace wg::version {

struct Generation {
  Manifest manifest;
  // Mutable pointee behind the const Generation: SNodeRepr's read path is
  // internally synchronized (its cache/IO locks), so concurrent cursors
  // through a shared const Generation are safe.
  std::unique_ptr<SNodeRepr> repr;
};

using GenerationPtr = std::shared_ptr<const Generation>;

// Aliasing view of the generation's repr that shares the Generation's
// lifetime: hand this to query code and the generation cannot be torn
// down underneath it.
inline std::shared_ptr<GraphRepresentation> ReprOf(const GenerationPtr& gen) {
  return std::shared_ptr<GraphRepresentation>(gen, gen->repr.get());
}

struct SnapshotOptions {
  SNodeBuildOptions build;
  // Read-path options for every generation's store open (mmap, readahead
  // window). Sizing fields are ignored: generations are opened read-only.
  GraphStore::Options store;
  // Scrub (pread + CRC) every blob of a generation before installing it.
  // A corrupt generation then fails Open()/Refresh()/Compact() with
  // Corruption while the previously installed generation keeps serving
  // (degraded mode), instead of the corruption surfacing mid-query later.
  // Costs one full sequential read of the store per flip; wgserve turns
  // it on, batch/bench paths leave it off.
  bool verify_before_install = false;
};

class SnapshotManager {
 public:
  // Creates <dir>, runs a full build over `base`, publishes generation 0,
  // and opens the (empty) delta log.
  static Result<std::unique_ptr<SnapshotManager>> Create(
      const std::string& dir, const WebGraph& base,
      const SnapshotOptions& options);

  // Re-attaches to an existing snapshot directory: reads CURRENT, loads
  // that generation, and recovers the delta log (truncating any torn
  // tail). Records past manifest.log_applied are simply pending again.
  static Result<std::unique_ptr<SnapshotManager>> Open(
      const std::string& dir, const SnapshotOptions& options);

  // The live generation. Cheap (one mutex hop + shared_ptr copy); copy it
  // once per request and read through the copy.
  GenerationPtr current() const;

  // Validates the batch against base-plus-pending state and appends it to
  // the log with one sync at the end. All-or-nothing: an invalid record
  // rejects the whole batch with nothing appended.
  Status AppendDeltas(const std::vector<DeltaRecord>& batch);

  // Replays the unapplied log suffix into *overlay (which must be freshly
  // constructed over current()'s page count by the caller -- or use the
  // convenience overload).
  Status BuildPendingOverlay(DeltaOverlay* overlay) const;

  // Folds all pending deltas into a new generation and publishes it
  // atomically. Returns the new (or unchanged, if nothing was pending)
  // generation.
  Result<GenerationPtr> Compact();

  // Re-reads CURRENT and, if it names a different generation than the one
  // published in this process, loads and installs it. Returns the
  // (possibly unchanged) live generation. This is how a serving process
  // follows compactions performed by another process against the same
  // directory -- poll Refresh() and SwapForward on a generation change.
  Result<GenerationPtr> Refresh();

  // Accounts delta records another process appended to the log since it
  // was opened, so pending_records() reflects the on-disk backlog -- a
  // long-running server polls this before deciding whether to Compact().
  Status TailLog();

  uint64_t log_records() const { return log_->num_records(); }
  uint64_t pending_records() const;
  const std::string& dir() const { return dir_; }

 private:
  SnapshotManager(std::string dir, SnapshotOptions options);

  Result<GenerationPtr> LoadGeneration(const std::string& manifest_name) const;
  Status Publish(const Manifest& manifest);
  Status OpenLog();
  static Result<std::string> ReadCurrentName(const std::string& dir);

  std::string dir_;
  SnapshotOptions options_;
  std::unique_ptr<DeltaLog> log_;

  mutable std::mutex admin_mu_;  // serializes AppendDeltas / Compact
  mutable std::mutex state_mu_;  // guards current_
  GenerationPtr current_;

  // wg_version_* series (bound per manager instance).
  obs::Gauge generation_gauge_;
  obs::Counter log_records_total_;
  obs::Counter deltas_applied_total_;
  obs::Counter blobs_shared_total_;
  obs::Counter blobs_written_total_;
  obs::Counter compactions_total_;
};

}  // namespace wg::version

#endif  // WG_VERSION_SNAPSHOT_H_
