#include "version/scrub.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "snode/snode_repr.h"
#include "storage/file.h"
#include "version/manifest.h"

namespace wg::version {

namespace {

// Same trimming rules as SnapshotManager::ReadCurrentName (private there;
// a scrub must not need a full manager -- it may be pointed at a directory
// whose delta log or live generation no longer opens).
Result<std::string> ReadCurrentName(const std::string& dir) {
  WG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> current,
                      RandomAccessFile::Open(dir + "/CURRENT"));
  if (current->size() == 0 || current->size() > 256) {
    return Status::NotFound("scrub: no CURRENT in " + dir);
  }
  std::string name(current->size(), '\0');
  WG_RETURN_IF_ERROR(current->Read(0, name.size(), name.data()));
  while (!name.empty() && (name.back() == '\n' || name.back() == '\0')) {
    name.pop_back();
  }
  return name;
}

}  // namespace

std::string ScrubReport::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "scrubbed %llu blobs (%llu bytes) in %zu files; "
                "%llu without crc; %zu errors\n",
                static_cast<unsigned long long>(blobs_checked),
                static_cast<unsigned long long>(bytes_checked), files.size(),
                static_cast<unsigned long long>(blobs_without_crc),
                errors.size());
  out += line;
  for (const ScrubError& e : errors) {
    std::snprintf(line, sizeof(line), "  blob %u (file %u %s): ", e.blob_id,
                  e.file_index, e.file.c_str());
    out += line;
    out += e.message;
    out += '\n';
  }
  return out;
}

Status ScrubStore(const GraphStore& store, ScrubReport* report) {
  for (uint32_t f = 0; f < store.num_files(); ++f) {
    report->files.push_back(store.FilePath(f));
  }
  for (uint32_t id = 0; id < store.num_blobs(); ++id) {
    GraphStore::BlobLocation loc = store.Location(id);
    Status verified = store.VerifyBlob(id);
    ++report->blobs_checked;
    if (verified.ok()) {
      report->bytes_checked += loc.length;
      if (loc.length > 0 && loc.crc == 0) ++report->blobs_without_crc;
      continue;
    }
    report->errors.push_back({id, loc.file_index, store.FilePath(loc.file_index),
                              verified.ToString()});
  }
  return Status::OK();
}

Status ScrubSNodeStore(const std::string& base_path, ScrubReport* report) {
  // Open resident-state-only (no mmap, no cache warm): the meta parse
  // itself validates the frame CRC and blob pointers before we ever pread
  // a pack.
  WG_ASSIGN_OR_RETURN(std::unique_ptr<SNodeRepr> repr,
                      SNodeRepr::Open(base_path, {}));
  return ScrubStore(repr->store(), report);
}

Status ScrubSnapshotDir(const std::string& dir, ScrubReport* report) {
  WG_ASSIGN_OR_RETURN(std::string name, ReadCurrentName(dir));
  WG_ASSIGN_OR_RETURN(Manifest manifest, Manifest::ReadFrom(dir + "/" + name));
  WG_ASSIGN_OR_RETURN(std::unique_ptr<GraphStore> store,
                      manifest.OpenStore(dir));
  return ScrubStore(*store, report);
}

}  // namespace wg::version
