#include "version/snapshot.h"

#include <cstdio>
#include <utility>

#include "obs/trace.h"
#include "version/content_hash.h"
#include "version/incremental.h"

namespace wg::version {

namespace {

std::string ManifestName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06llu",
                static_cast<unsigned long long>(generation));
  return buf;
}

std::string PackBasePath(const std::string& dir, uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen-%06llu",
                static_cast<unsigned long long>(generation));
  return dir + "/" + buf;
}

}  // namespace

SnapshotManager::SnapshotManager(std::string dir, SnapshotOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  obs::Labels labels = {{"instance", std::to_string(obs::NextInstanceId())}};
  // Bind (not assign) the counters: Counter assignment is value-semantic
  // and would leave the registry series dead (see server/query_service.cc).
  generation_gauge_ = registry.GetGauge("wg_version_generation", labels,
                                        "Published snapshot generation");
  log_records_total_.Bind(registry, "wg_version_log_records_total", labels,
                          "Delta records appended to the write-ahead log");
  deltas_applied_total_.Bind(registry, "wg_version_deltas_applied_total",
                             labels,
                             "Delta records folded into a generation");
  blobs_shared_total_.Bind(
      registry, "wg_version_blobs_shared_total", labels,
      "Blobs shared byte-identically with an earlier generation");
  blobs_written_total_.Bind(registry, "wg_version_blobs_written_total",
                            labels, "Blobs newly written by compactions");
  compactions_total_.Bind(registry, "wg_version_compactions_total", labels,
                          "Completed compactions");
}

Result<std::unique_ptr<SnapshotManager>> SnapshotManager::Create(
    const std::string& dir, const WebGraph& base,
    const SnapshotOptions& options) {
  WG_RETURN_IF_ERROR(EnsureDirectory(dir));
  RefinementStats stats;
  WG_ASSIGN_OR_RETURN(
      std::unique_ptr<SNodeRepr> built,
      SNodeRepr::Build(base, PackBasePath(dir, 0), options.build, &stats));

  // Generation 0's manifest: every blob is this generation's own, hashed
  // so the first compaction has the full sharing table.
  Manifest manifest;
  manifest.generation = 0;
  manifest.log_applied = 0;
  const GraphStore& store = built->store();
  manifest.files.reserve(store.num_files());
  for (uint32_t f = 0; f < store.num_files(); ++f) {
    manifest.files.push_back(store.FilePath(f).substr(dir.size() + 1));
  }
  manifest.blobs.reserve(store.num_blobs());
  std::vector<uint8_t> bytes;
  for (uint32_t id = 0; id < store.num_blobs(); ++id) {
    WG_RETURN_IF_ERROR(store.ReadBlob(id, &bytes));
    GraphStore::BlobLocation loc = store.Location(id);
    manifest.blobs.push_back(
        {loc.file_index, loc.offset, loc.length, loc.crc, HashBlob(bytes)});
  }
  manifest.blobs_written = store.num_blobs();

  // Resident state through the public surface (the repr is about to be
  // dropped; every generation is loaded uniformly from its manifest).
  SNodeResidentState state;
  state.num_edges = built->num_edges();
  size_t n = built->num_pages();
  state.new_of_orig.resize(n);
  state.orig_of_new.resize(n);
  for (size_t p = 0; p < n; ++p) {
    state.new_of_orig[p] = static_cast<PageId>(built->LocalityKey(p));
    state.orig_of_new[p] = built->PageInNaturalOrder(p);
  }
  state.supernodes = built->supernode_graph();
  state.Serialize(&manifest.resident);
  // The manifest is about to reference these pack bytes; they must be on
  // the platter before CURRENT can point at them.
  WG_RETURN_IF_ERROR(store.SyncAll());
  built.reset();

  std::unique_ptr<SnapshotManager> manager(
      new SnapshotManager(dir, options));
  WG_RETURN_IF_ERROR(manager->Publish(manifest));
  WG_ASSIGN_OR_RETURN(manager->current_,
                      manager->LoadGeneration(ManifestName(0)));
  WG_RETURN_IF_ERROR(manager->OpenLog());
  manager->generation_gauge_.Set(0);
  return manager;
}

Result<std::string> SnapshotManager::ReadCurrentName(const std::string& dir) {
  WG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> current,
                      RandomAccessFile::Open(dir + "/CURRENT"));
  if (current->size() == 0 || current->size() > 256) {
    return Status::NotFound("snapshot: no CURRENT in " + dir);
  }
  std::string name(current->size(), '\0');
  WG_RETURN_IF_ERROR(current->Read(0, name.size(), name.data()));
  while (!name.empty() && (name.back() == '\n' || name.back() == '\0')) {
    name.pop_back();
  }
  return name;
}

Result<std::unique_ptr<SnapshotManager>> SnapshotManager::Open(
    const std::string& dir, const SnapshotOptions& options) {
  WG_ASSIGN_OR_RETURN(std::string name, ReadCurrentName(dir));
  std::unique_ptr<SnapshotManager> manager(
      new SnapshotManager(dir, options));
  WG_ASSIGN_OR_RETURN(manager->current_, manager->LoadGeneration(name));
  WG_RETURN_IF_ERROR(manager->OpenLog());
  manager->generation_gauge_.Set(
      static_cast<double>(manager->current_->manifest.generation));
  return manager;
}

Status SnapshotManager::OpenLog() {
  DeltaLogRecoveryStats recovery;
  WG_ASSIGN_OR_RETURN(log_, DeltaLog::Open(dir_ + "/deltas.log", &recovery));
  log_records_total_ += recovery.records;
  return Status::OK();
}

GenerationPtr SnapshotManager::current() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_;
}

Result<GenerationPtr> SnapshotManager::LoadGeneration(
    const std::string& manifest_name) const {
  WG_ASSIGN_OR_RETURN(Manifest manifest,
                      Manifest::ReadFrom(dir_ + "/" + manifest_name));
  WG_ASSIGN_OR_RETURN(SNodeResidentState state, manifest.ParseResident());
  WG_ASSIGN_OR_RETURN(std::unique_ptr<GraphStore> store,
                      manifest.OpenStore(dir_, options_.store));
  if (options_.verify_before_install) {
    for (uint32_t id = 0; id < store->num_blobs(); ++id) {
      WG_RETURN_IF_ERROR(store->VerifyBlob(id));
    }
  }
  WG_ASSIGN_OR_RETURN(
      std::unique_ptr<SNodeRepr> repr,
      SNodeRepr::FromParts(std::move(state), std::move(store),
                           PackBasePath(dir_, manifest.generation),
                           options_.build));
  auto generation = std::make_shared<Generation>();
  generation->manifest = std::move(manifest);
  generation->repr = std::move(repr);
  return GenerationPtr(std::move(generation));
}

Status SnapshotManager::Publish(const Manifest& manifest) {
  obs::Span span("version.publish", "version");
  span.AddArg("generation", manifest.generation);
  std::string name = ManifestName(manifest.generation);
  WG_RETURN_IF_ERROR(manifest.WriteTo(dir_ + "/" + name));
  // WriteTo fsynced the manifest's bytes; the directory fsync makes its
  // (and any new pack files') directory entries durable. Without it a
  // power cut could publish a CURRENT pointing at a manifest whose entry
  // never reached the disk.
  WG_RETURN_IF_ERROR(SyncDirectory(dir_));

  // The atomic flip: CURRENT is replaced by rename, so a concurrent
  // Open() sees either the old complete generation or the new one.
  std::string tmp_path = dir_ + "/CURRENT.tmp";
  WG_RETURN_IF_ERROR(RemoveFileIfExists(tmp_path));
  {
    WG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> tmp,
                        RandomAccessFile::Open(tmp_path));
    std::string line = name + "\n";
    WG_RETURN_IF_ERROR(tmp->Append(line.data(), line.size()));
    WG_RETURN_IF_ERROR(tmp->Sync());
  }
  WG_RETURN_IF_ERROR(RenameFile(tmp_path, dir_ + "/CURRENT"));
  // Second directory fsync: the rename itself is durable, so a reopening
  // process cannot land back on the previous generation after we told
  // the caller the flip succeeded.
  return SyncDirectory(dir_);
}

Status SnapshotManager::AppendDeltas(const std::vector<DeltaRecord>& batch) {
  if (batch.empty()) return Status::OK();
  std::lock_guard<std::mutex> admin(admin_mu_);
  // Validate the whole batch against base-plus-pending state before any
  // byte hits the log: an invalid record rejects the batch atomically.
  DeltaOverlay overlay(current()->repr->num_pages());
  WG_RETURN_IF_ERROR(BuildPendingOverlay(&overlay));
  for (const DeltaRecord& record : batch) {
    WG_RETURN_IF_ERROR(overlay.Apply(record));
  }
  for (const DeltaRecord& record : batch) {
    WG_RETURN_IF_ERROR(log_->Append(record));
  }
  WG_RETURN_IF_ERROR(log_->Sync());
  log_records_total_ += batch.size();
  return Status::OK();
}

Status SnapshotManager::BuildPendingOverlay(DeltaOverlay* overlay) const {
  uint64_t applied = current()->manifest.log_applied;
  return DeltaLog::Replay(
      log_->path(), applied,
      [overlay](const DeltaRecord& record) { return overlay->Apply(record); });
}

Result<GenerationPtr> SnapshotManager::Compact() {
  std::lock_guard<std::mutex> admin(admin_mu_);
  GenerationPtr base = current();
  uint64_t applied = base->manifest.log_applied;
  uint64_t total = log_->num_records();
  if (total == applied) return base;  // nothing pending

  obs::Span span("version.compact", "version");
  span.AddArg("generation", base->manifest.generation + 1);
  span.AddArg("pending", total - applied);

  // Replay exactly the `total - applied` records this compaction claims
  // as log_applied in the new manifest: an external writer may append
  // more frames while we run, and folding those here without accounting
  // them would double-apply them at the next compaction.
  DeltaOverlay overlay(base->repr->num_pages());
  uint64_t remaining = total - applied;
  WG_RETURN_IF_ERROR(
      DeltaLog::Replay(log_->path(), applied, [&](const DeltaRecord& r) {
        if (remaining == 0) return Status::OK();
        --remaining;
        return overlay.Apply(r);
      }));

  // Exact edge count of the mutated graph, through the same overlay the
  // incremental build encodes from.
  WG_ASSIGN_OR_RETURN(
      std::unique_ptr<OverlayRepresentation> merged,
      OverlayRepresentation::Make(base->repr.get(), &overlay));
  uint64_t num_edges = merged->num_edges();
  merged.reset();

  RefinementStats stats;
  MaintainedPartition maintained = MaintainPartition(
      *base->repr, overlay, options_.build.refinement, &stats);
  WG_ASSIGN_OR_RETURN(
      Manifest manifest,
      BuildIncrementalGeneration(*base->repr, base->manifest, overlay,
                                 maintained, base->manifest.generation + 1,
                                 total, num_edges, dir_, options_.build,
                                 &stats));
  WG_RETURN_IF_ERROR(Publish(manifest));
  WG_ASSIGN_OR_RETURN(GenerationPtr next,
                      LoadGeneration(ManifestName(manifest.generation)));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    current_ = next;
  }
  generation_gauge_.Set(static_cast<double>(manifest.generation));
  deltas_applied_total_ += total - applied;
  blobs_shared_total_ += manifest.blobs_shared;
  blobs_written_total_ += manifest.blobs_written;
  ++compactions_total_;
  return next;
}

Result<GenerationPtr> SnapshotManager::Refresh() {
  std::lock_guard<std::mutex> admin(admin_mu_);
  WG_ASSIGN_OR_RETURN(std::string name, ReadCurrentName(dir_));
  GenerationPtr base = current();
  if (name == ManifestName(base->manifest.generation)) return base;
  WG_ASSIGN_OR_RETURN(GenerationPtr next, LoadGeneration(name));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    current_ = next;
  }
  generation_gauge_.Set(static_cast<double>(next->manifest.generation));
  return next;
}

uint64_t SnapshotManager::pending_records() const {
  return log_->num_records() - current()->manifest.log_applied;
}

Status SnapshotManager::TailLog() {
  std::lock_guard<std::mutex> admin(admin_mu_);
  return log_->TailFromDisk();
}

}  // namespace wg::version
