#ifndef WG_VERSION_OVERLAY_H_
#define WG_VERSION_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "repr/representation.h"
#include "version/delta_log.h"

// The read side of the delta log: a materialized batch of crawl mutations
// (DeltaOverlay) and a GraphRepresentation adaptor (OverlayRepresentation)
// that makes base-generation-plus-deltas queryable through the ordinary
// cursor API. Query code (src/query, the server's QueryService) runs
// unchanged on an overlay: pages added since the last published generation
// are visible, removed pages answer with empty adjacency, and link edits
// are merged into the base scheme's views on the fly. The overlay is the
// bridge between generations -- once compaction folds the deltas into the
// next generation's store, queries flip to the new SNodeRepr and the
// overlay is dropped.
//
// Mutation semantics (shared with incremental maintenance, see
// version/incremental.h): a removed page becomes a *tombstone* -- it keeps
// its PageId forever, stays in its partition element and domain, and
// merely loses every in- and out-link. Ids are never reused and never
// shift, which is what keeps the crawl-order <-> S-Node-order permutation
// of old pages stable across generations (actual removal is deferred to a
// periodic full rebuild, like the paper's from-scratch construction).

namespace wg::version {

// A page added by the overlay. Its id is base_pages + index in added().
struct NewPage {
  std::string url;
  std::string host;
  std::string domain;
};

// Accumulated mutations over a base snapshot of `base_pages` pages.
// Apply() validates each record against the state so far; an invalid
// record (out-of-range id, non-dense added-page id, self-loop, link
// touching a tombstone) is rejected and leaves the overlay unchanged.
class DeltaOverlay {
 public:
  explicit DeltaOverlay(size_t base_pages) : base_pages_(base_pages) {}

  Status Apply(const DeltaRecord& record);

  size_t base_pages() const { return base_pages_; }
  size_t num_pages() const { return base_pages_ + added_.size(); }
  bool empty() const {
    return added_.empty() && tombstoned_.empty() && edits_.empty();
  }

  const std::vector<NewPage>& added_pages() const { return added_; }
  bool is_tombstoned(PageId p) const { return tombstoned_.count(p) > 0; }
  bool has_tombstones() const { return !tombstoned_.empty(); }
  const std::unordered_set<PageId>& tombstones() const { return tombstoned_; }

  // True if p's effective out-links can differ from the base scheme's
  // answer for reasons local to p: p is new, tombstoned, or has link
  // edits. (When the overlay holds tombstones, *every* page's links can
  // additionally differ by losing targets; callers check has_tombstones
  // for that global condition.)
  bool links_dirty(PageId p) const {
    return p >= base_pages_ || is_tombstoned(p) || edits_.count(p) > 0;
  }

  // Pages with local out-link dirt (new, tombstoned, or edited) -- the
  // seed set for incremental maintenance's dirty-supernode computation.
  std::vector<PageId> DirtySources() const;

  // Computes p's effective out-links: base minus removed edges plus added
  // edges, minus tombstoned targets; empty if p is tombstoned. `base` is
  // the base scheme's (sorted) answer for p -- pass {} for added pages.
  // *out is replaced, sorted ascending.
  void MergeLinks(PageId p, std::span<const PageId> base,
                  std::vector<PageId>* out) const;

  size_t MemoryUsage() const;

 private:
  struct LinkEdit {
    std::vector<PageId> adds;     // sorted, unique
    std::vector<PageId> removes;  // sorted, unique; disjoint from adds
  };

  size_t base_pages_;
  std::vector<NewPage> added_;
  std::unordered_set<PageId> tombstoned_;
  std::unordered_map<PageId, LinkEdit> edits_;
};

// GraphRepresentation over (base scheme, overlay). Clean base pages pass
// the base cursor's views through untouched -- zero-copy, pins intact --
// so an empty or link-only overlay adds one hash probe per request to the
// base scheme's read path. Dirty pages (and every page once the overlay
// holds tombstones, since any link may now point at a removed page) are
// merged into cursor scratch.
//
// The base representation must outlive this adaptor and any cursor or
// pinned view obtained from it (the snapshot layer guarantees that by
// holding the base generation's shared_ptr inside each served request).
class OverlayRepresentation : public GraphRepresentation {
 public:
  // Computes the exact edge count up front: a link-edit-only overlay costs
  // one base-cursor probe per dirty source; an overlay with tombstones
  // costs a full adjacency scan of the base (every page may have lost
  // links), the price of keeping num_edges() exact for query planning.
  static Result<std::unique_ptr<OverlayRepresentation>> Make(
      GraphRepresentation* base, const DeltaOverlay* overlay);

  std::string name() const override { return "overlay+" + base_->name(); }
  size_t num_pages() const override { return overlay_->num_pages(); }
  uint64_t num_edges() const override { return num_edges_; }

  std::unique_ptr<AdjacencyCursor> NewCursor() override;

  // Base domains come from the base scheme's index; pages added by the
  // overlay are appended from its metadata. Tombstoned pages stay listed
  // (they still exist, link-less), mirroring partition maintenance.
  Status PagesInDomain(const std::string& domain,
                       std::vector<PageId>* out) override;

  // Old pages keep the base scheme's locality; added pages sort after
  // every base page in log order (they live in the overlay, not the
  // store, so there is no disk locality to exploit yet).
  uint64_t LocalityKey(PageId p) const override {
    return p < overlay_->base_pages() ? base_->LocalityKey(p)
                                      : kNewPageLocalityBase + p;
  }
  PageId PageInNaturalOrder(size_t i) const override {
    return i < overlay_->base_pages() ? base_->PageInNaturalOrder(i)
                                      : static_cast<PageId>(i);
  }

  uint64_t encoded_bits() const override {
    // The overlay's resident deltas are the "encoding" of the unmerged
    // edits; counting them keeps bits/edge honest between generations.
    return base_->encoded_bits() + overlay_->MemoryUsage() * 8;
  }
  size_t resident_memory() const override {
    return base_->resident_memory() + overlay_->MemoryUsage();
  }
  void ClearBuffers() override { base_->ClearBuffers(); }

 private:
  class Cursor;

  static constexpr uint64_t kNewPageLocalityBase = uint64_t{1} << 40;

  OverlayRepresentation(GraphRepresentation* base, const DeltaOverlay* overlay)
      : base_(base), overlay_(overlay) {}

  GraphRepresentation* base_;
  const DeltaOverlay* overlay_;
  uint64_t num_edges_ = 0;
};

// Folds the overlay into a plain WebGraph: the mutated ground truth a
// from-scratch rebuild would be given. Tombstoned pages are kept (empty
// adjacency, metadata intact) per the tombstone semantics above, so page
// ids in the result line up with overlay ids one-to-one.
Result<WebGraph> ApplyOverlay(const WebGraph& base,
                              const DeltaOverlay& overlay);

}  // namespace wg::version

#endif  // WG_VERSION_OVERLAY_H_
