#ifndef WG_VERSION_SCRUB_H_
#define WG_VERSION_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/graph_store.h"
#include "util/status.h"

// Offline full-store verification ("wgtool scrub"). A scrub preads every
// blob a store's directory names and checks it against its recorded CRC32
// and file extents, accumulating every finding instead of stopping at the
// first -- an operator deciding whether to restore from backup wants the
// damage report, not its first line. Scrubbing is read-only and safe
// against a store another process is serving from.

namespace wg::version {

// One damaged (or unverifiable) blob.
struct ScrubError {
  uint32_t blob_id = 0;
  uint32_t file_index = 0;
  std::string file;     // pack path (relative or absolute as opened)
  std::string message;  // the failing Status text
};

struct ScrubReport {
  uint64_t blobs_checked = 0;
  // Blobs whose directory entry carries crc 0 (legacy/unknown): their
  // extents were still bounds-checked but the bytes are unverifiable.
  uint64_t blobs_without_crc = 0;
  uint64_t bytes_checked = 0;
  std::vector<std::string> files;  // every pack file visited
  std::vector<ScrubError> errors;

  bool clean() const { return errors.empty(); }
  // Multi-line, human-readable: per-pack tallies then per-blob errors.
  std::string ToString() const;
};

// Verifies every blob of an already opened store. Only fails outright
// (non-OK return) on errors in the scrub itself; damage lands in
// report->errors.
Status ScrubStore(const GraphStore& store, ScrubReport* report);

// Scrubs a persisted S-Node store (BASE.meta + BASE.NNN packs): opens the
// meta's directory read-only and verifies every blob.
Status ScrubSNodeStore(const std::string& base_path, ScrubReport* report);

// Scrubs a snapshot directory (made by `wgtool snapshot-init`): reads
// CURRENT, loads the live manifest, and verifies every blob it references
// -- including blobs shared from earlier generations' packs.
Status ScrubSnapshotDir(const std::string& dir, ScrubReport* report);

}  // namespace wg::version

#endif  // WG_VERSION_SCRUB_H_
