#include "version/manifest.h"

#include "storage/serial.h"
#include "util/coding.h"

namespace wg::version {

namespace {
// Bumped to WGM2 when blob entries gained per-blob CRCs (PR 8).
constexpr char kManifestMagic[4] = {'W', 'G', 'M', '2'};
}  // namespace

Status Manifest::WriteTo(const std::string& path) const {
  std::string payload;
  PutVarint64(&payload, generation);
  PutVarint64(&payload, log_applied);
  PutVarint64(&payload, files.size());
  for (const std::string& f : files) {
    PutVarint64(&payload, f.size());
    payload.append(f);
  }
  PutVarint64(&payload, blobs.size());
  for (const ManifestBlob& b : blobs) {
    PutVarint32(&payload, b.file_index);
    PutVarint64(&payload, b.offset);
    PutVarint32(&payload, b.length);
    PutVarint32(&payload, b.crc);
    PutVarint64(&payload, b.hash.hi);
    PutVarint64(&payload, b.hash.lo);
  }
  PutVarint64(&payload, blobs_shared);
  PutVarint64(&payload, blobs_written);
  PutVarint64(&payload, resident.size());
  payload.append(resident);
  return WriteFramedFile(path, kManifestMagic, payload);
}

Result<Manifest> Manifest::ReadFrom(const std::string& path) {
  WG_ASSIGN_OR_RETURN(std::string payload,
                      ReadFramedFile(path, kManifestMagic));
  SerialCursor cursor(payload);
  Manifest m;
  uint64_t n_files = 0;
  if (!cursor.ReadVarint64(&m.generation) ||
      !cursor.ReadVarint64(&m.log_applied) ||
      !cursor.ReadVarint64(&n_files)) {
    return Status::Corruption("manifest: bad header");
  }
  m.files.resize(n_files);
  for (auto& f : m.files) {
    if (!cursor.ReadString(&f) || f.empty()) {
      return Status::Corruption("manifest: bad file name");
    }
  }
  uint64_t n_blobs = 0;
  if (!cursor.ReadVarint64(&n_blobs)) {
    return Status::Corruption("manifest: bad blob count");
  }
  m.blobs.resize(n_blobs);
  for (auto& b : m.blobs) {
    uint64_t hi = 0, lo = 0;
    if (!cursor.ReadVarint32(&b.file_index) || !cursor.ReadVarint64(&b.offset) ||
        !cursor.ReadVarint32(&b.length) || !cursor.ReadVarint32(&b.crc) ||
        !cursor.ReadVarint64(&hi) || !cursor.ReadVarint64(&lo) ||
        b.file_index >= m.files.size()) {
      return Status::Corruption("manifest: bad blob entry");
    }
    b.hash = {hi, lo};
  }
  if (!cursor.ReadVarint64(&m.blobs_shared) ||
      !cursor.ReadVarint64(&m.blobs_written) ||
      !cursor.ReadString(&m.resident)) {
    return Status::Corruption("manifest: bad trailer");
  }
  return m;
}

Result<std::unique_ptr<GraphStore>> Manifest::OpenStore(
    const std::string& dir) const {
  return OpenStore(dir, GraphStore::Options());
}

Result<std::unique_ptr<GraphStore>> Manifest::OpenStore(
    const std::string& dir, const GraphStore::Options& options) const {
  std::vector<std::string> paths;
  paths.reserve(files.size());
  for (const std::string& f : files) paths.push_back(dir + "/" + f);
  std::vector<GraphStore::BlobLocation> directory;
  directory.reserve(blobs.size());
  for (const ManifestBlob& b : blobs) {
    directory.push_back({b.file_index, b.offset, b.length, b.crc});
  }
  return GraphStore::OpenFiles(paths, std::move(directory), options);
}

Result<SNodeResidentState> Manifest::ParseResident() const {
  SerialCursor cursor(resident);
  return SNodeResidentState::Parse(&cursor);
}

}  // namespace wg::version
