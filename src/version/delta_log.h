#ifndef WG_VERSION_DELTA_LOG_H_
#define WG_VERSION_DELTA_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "graph/webgraph.h"
#include "storage/file.h"
#include "util/status.h"

// The write-ahead crawl-delta log of the versioned snapshot store: an
// append-only sequence of page/link mutations discovered by a crawl
// increment, durable before any of them is reflected in a published
// generation. Each record is framed as
//
//     fixed32 payload_length | fixed32 crc32(payload) | payload
//
// with the CRC (util/crc32.h) guarding against torn writes: a crash mid
// append leaves a frame whose length field, CRC, or body is bad, and
// recovery keeps exactly the longest prefix of fully valid frames and
// truncates the rest -- the classic write-ahead-log contract. Records
// already applied to a published generation are remembered by the
// generation's manifest (log_applied), so replay after a crash restarts
// from the first unapplied record, never double-applying.

namespace wg::version {

// One crawl mutation. Page ids are crawl-order ("original") ids: an added
// page takes the next dense id (base pages first, then added pages in log
// order); a removed page keeps its id forever and becomes a tombstone --
// its links vanish but the id is never reused, so every older generation's
// permutation stays valid. Link records may reference base or added pages.
struct DeltaRecord {
  enum class Kind : uint8_t {
    kAddPage = 1,
    kRemovePage = 2,
    kAddLink = 3,
    kRemoveLink = 4,
  };

  Kind kind = Kind::kAddLink;
  PageId page = 0;  // kAddPage / kRemovePage
  PageId from = 0;  // kAddLink / kRemoveLink
  PageId to = 0;
  // kAddPage only: the page's URL, host, and domain (top two DNS levels),
  // the attributes partition maintenance groups by.
  std::string url;
  std::string host;
  std::string domain;

  static DeltaRecord AddPage(PageId id, std::string url, std::string host,
                             std::string domain) {
    DeltaRecord r;
    r.kind = Kind::kAddPage;
    r.page = id;
    r.url = std::move(url);
    r.host = std::move(host);
    r.domain = std::move(domain);
    return r;
  }
  static DeltaRecord RemovePage(PageId id) {
    DeltaRecord r;
    r.kind = Kind::kRemovePage;
    r.page = id;
    return r;
  }
  static DeltaRecord AddLink(PageId from, PageId to) {
    DeltaRecord r;
    r.kind = Kind::kAddLink;
    r.from = from;
    r.to = to;
    return r;
  }
  static DeltaRecord RemoveLink(PageId from, PageId to) {
    DeltaRecord r;
    r.kind = Kind::kRemoveLink;
    r.from = from;
    r.to = to;
    return r;
  }
};

// What recovery found when a log was opened or replayed.
struct DeltaLogRecoveryStats {
  uint64_t records = 0;        // valid records in the recovered prefix
  uint64_t valid_bytes = 0;    // byte length of that prefix
  uint64_t dropped_bytes = 0;  // torn/corrupt tail discarded past it
};

class DeltaLog {
 public:
  // Opens (creating if needed) the log at `path`. Recovery runs first:
  // the longest valid frame prefix is kept and any torn tail is truncated
  // from the file, so a crashed writer's partial frame can never poison a
  // later reader or be half-overwritten by the next append.
  static Result<std::unique_ptr<DeltaLog>> Open(
      const std::string& path, DeltaLogRecoveryStats* stats = nullptr);

  // Appends one framed record (buffered by the OS; call Sync for
  // durability -- the snapshot layer syncs once per delta batch).
  Status Append(const DeltaRecord& record);
  Status Sync() { return file_->Sync(); }

  uint64_t num_records() const { return num_records_; }
  const std::string& path() const { return file_->path(); }

  // Accounts whole valid frames another process appended to the file
  // since this log was opened (or last tailed), extending num_records().
  // Unlike Open, a torn tail is left alone -- it may be a concurrent
  // writer's in-flight append, and the next tail will pick it up once
  // complete. Lets a long-running reader (wgserve's snapshot manager)
  // see the on-disk backlog an external `wgtool delta-apply` grows.
  Status TailFromDisk();

  // Replays the valid prefix of the log at `path`, skipping the first
  // `skip_records` records (those a manifest says are already applied) and
  // passing the rest to `fn` in order. Stops at the first invalid frame
  // without touching the file (read-only recovery semantics).
  static Status Replay(const std::string& path, uint64_t skip_records,
                       const std::function<Status(const DeltaRecord&)>& fn,
                       DeltaLogRecoveryStats* stats = nullptr);

 private:
  explicit DeltaLog(std::unique_ptr<RandomAccessFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<RandomAccessFile> file_;
  uint64_t num_records_ = 0;
  uint64_t valid_bytes_ = 0;  // length of the validated frame prefix
};

}  // namespace wg::version

#endif  // WG_VERSION_DELTA_LOG_H_
