#ifndef WG_VERSION_CONTENT_HASH_H_
#define WG_VERSION_CONTENT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

// Content addressing for store blobs, in the style of memodb's CID store:
// a blob's identity is a hash of its bytes, so two generations that encode
// the same intranode or superedge graph share one physical copy. 128 bits
// of FNV-1a (two independent streams) keeps accidental collisions out of
// reach at any realistic blob count while staying dependency-free and
// deterministic across platforms.

namespace wg::version {

struct ContentHash {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const ContentHash& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const ContentHash& other) const { return !(*this == other); }

  std::string ToHex() const {
    char buf[36];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
  }
};

inline ContentHash HashBytes(const uint8_t* data, size_t n) {
  // Two FNV-1a streams with distinct offset bases; the second also folds
  // in the length so same-content-different-length (impossible here, but
  // cheap insurance) cannot alias.
  uint64_t a = 0xcbf29ce484222325ull;
  uint64_t b = 0x84222325cbf29ce4ull ^ (0x9e3779b97f4a7c15ull * n);
  for (size_t i = 0; i < n; ++i) {
    a = (a ^ data[i]) * 0x100000001b3ull;
    b = (b ^ data[i]) * 0x00000100000001b3ull;
    b ^= b >> 29;
  }
  return {a, b};
}

inline ContentHash HashBlob(const std::vector<uint8_t>& blob) {
  return HashBytes(blob.data(), blob.size());
}

struct ContentHashHasher {
  size_t operator()(const ContentHash& h) const {
    return static_cast<size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace wg::version

#endif  // WG_VERSION_CONTENT_HASH_H_
