#include "version/incremental.h"

#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "snode/section_encode.h"
#include "version/content_hash.h"

namespace wg::version {

namespace {

inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Supernode of base page p (crawl-order id) in the base generation.
inline uint32_t BaseOwner(const SNodeRepr& base, PageId p) {
  return base.supernode_graph().SupernodeOf(
      static_cast<PageId>(base.LocalityKey(p)));
}

}  // namespace

MaintainedPartition MaintainPartition(const SNodeRepr& base,
                                      const DeltaOverlay& overlay,
                                      const RefinementOptions& options,
                                      RefinementStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  obs::Span span("version.maintain_partition", "version");
  const SupernodeGraph& sg = base.supernode_graph();
  uint32_t n_old = sg.num_supernodes();
  size_t base_pages = base.num_pages();

  MaintainedPartition result;
  result.num_old_elements = n_old;

  // Old elements verbatim: pages in URL-sorted order straight from the
  // base numbering (tombstones included -- see the header contract).
  result.partition.elements.reserve(n_old);
  for (uint32_t s = 0; s < n_old; ++s) {
    std::vector<PageId> element;
    element.reserve(sg.pages_in(s));
    for (PageId nid = sg.page_start[s]; nid < sg.page_start[s + 1]; ++nid) {
      element.push_back(base.PageInNaturalOrder(nid));
    }
    result.partition.elements.push_back(std::move(element));
  }

  // New pages: group by domain (P0), URL-split each group, append in
  // domain order. std::map keeps domain order deterministic.
  const auto& added = overlay.added_pages();
  std::map<std::string, std::vector<PageId>> by_domain;
  for (size_t i = 0; i < added.size(); ++i) {
    by_domain[added[i].domain].push_back(static_cast<PageId>(base_pages + i));
  }
  auto url_of = [&](PageId p) -> const std::string& {
    return added[p - base_pages].url;
  };
  for (auto& [domain, pages] : by_domain) {
    std::vector<std::vector<PageId>> groups =
        RefineNewElement(std::move(pages), url_of, options);
    for (auto& group : groups) {
      result.partition.elements.push_back(std::move(group));
      result.new_element_domains.push_back(domain);
    }
  }

  // Dirty marking.
  result.dirty.assign(result.partition.num_elements(), 0);
  // Rule 1: elements of locally dirty pages; rule 3: new elements.
  for (PageId p : overlay.DirtySources()) {
    if (p < base_pages) result.dirty[BaseOwner(base, p)] = 1;
  }
  for (size_t e = n_old; e < result.partition.num_elements(); ++e) {
    result.dirty[e] = 1;
  }
  // Rule 2: elements with a base superedge into a tombstoned page's
  // element (their pages may have lost links onto the tombstone).
  if (overlay.has_tombstones()) {
    std::unordered_set<uint32_t> tomb_elements;
    for (PageId t : overlay.tombstones()) {
      tomb_elements.insert(BaseOwner(base, t));
    }
    for (uint32_t s = 0; s < n_old; ++s) {
      if (result.dirty[s]) continue;
      auto [begin, end] = sg.OutEdges(s);
      for (const uint32_t* j = begin; j != end; ++j) {
        if (tomb_elements.count(*j) > 0) {
          result.dirty[s] = 1;
          break;
        }
      }
    }
  }

  span.AddArg("elements", result.partition.num_elements());
  span.AddArg("dirty", result.dirty_count());
  if (stats != nullptr) {
    stats->final_elements = result.partition.num_elements();
    stats->refine_seconds = SecondsSince(t0);
  }
  return result;
}

Result<Manifest> BuildIncrementalGeneration(
    SNodeRepr& base, const Manifest& base_manifest,
    const DeltaOverlay& overlay, const MaintainedPartition& maintained,
    uint64_t generation, uint64_t log_applied, uint64_t num_edges,
    const std::string& dir, const SNodeBuildOptions& options,
    RefinementStats* stats) {
  auto t_total = std::chrono::steady_clock::now();
  obs::Span span("version.build_generation", "version");
  span.AddArg("generation", generation);

  const Partition& partition = maintained.partition;
  size_t num_pages = overlay.num_pages();
  WG_RETURN_IF_ERROR(partition.Validate(num_pages));
  uint32_t n_super = static_cast<uint32_t>(partition.num_elements());
  const SupernodeGraph& base_sg = base.supernode_graph();

  // Numbering rule over the maintained partition. Old elements are a
  // verbatim prefix, so old pages keep their base-generation ids.
  SNodeResidentState state;
  state.num_edges = num_edges;
  state.new_of_orig.resize(num_pages);
  state.orig_of_new.resize(num_pages);
  SupernodeGraph& sg = state.supernodes;
  sg.page_start.reserve(n_super + 1);
  PageId next_id = 0;
  for (const auto& element : partition.elements) {
    sg.page_start.push_back(next_id);
    for (PageId orig : element) {
      state.new_of_orig[orig] = next_id;
      state.orig_of_new[next_id] = orig;
      ++next_id;
    }
  }
  sg.page_start.push_back(next_id);
  std::vector<uint32_t> owner = partition.ElementOf(num_pages);

  // Content-hash table of the base generation's blobs: the sharing key.
  // (128-bit hashes; an accidental collision would silently alias two
  // blobs, but at ~2^-64 per pair across a store of thousands that risk
  // is the design's stated trade for never reading old packs here.)
  std::unordered_map<ContentHash, ManifestBlob, ContentHashHasher> known;
  known.reserve(base_manifest.blobs.size());
  for (const ManifestBlob& b : base_manifest.blobs) {
    known.emplace(b.hash, b);
  }

  Manifest manifest;
  manifest.generation = generation;
  manifest.log_applied = log_applied;
  manifest.files = base_manifest.files;

  // Fresh pack for this generation, created lazily: a compaction whose
  // every re-encoded blob hash-matches the base writes no pack at all.
  std::unique_ptr<GraphStore> pack;
  char pack_name[32];
  std::snprintf(pack_name, sizeof(pack_name), "gen-%06llu",
                static_cast<unsigned long long>(generation));
  uint32_t base_file_count = static_cast<uint32_t>(base_manifest.files.size());
  auto emit_blob = [&](const std::vector<uint8_t>& bytes) -> Status {
    ContentHash hash = HashBlob(bytes);
    auto it = known.find(hash);
    if (it != known.end()) {
      manifest.blobs.push_back(it->second);
      ++manifest.blobs_shared;
      return Status::OK();
    }
    if (pack == nullptr) {
      WG_ASSIGN_OR_RETURN(
          pack, GraphStore::Create(dir + "/" + pack_name, options.store));
    }
    WG_ASSIGN_OR_RETURN(uint32_t id, pack->Append(bytes));
    GraphStore::BlobLocation loc = pack->Location(id);
    ManifestBlob entry{base_file_count + loc.file_index, loc.offset,
                       loc.length, loc.crc, hash};
    manifest.blobs.push_back(entry);
    known.emplace(hash, entry);  // dedup within this generation too
    ++manifest.blobs_written;
    return Status::OK();
  };

  // Adjacency source for dirty sections: base cursor views merged with
  // the overlay -- exactly the mutated graph's out-links, so the encoded
  // bytes match a from-scratch rebuild over the same partition.
  std::unique_ptr<AdjacencyCursor> cursor = base.NewCursor();
  std::vector<PageId> merged;
  SectionLinksFn links_of = [&](PageId p,
                                std::vector<PageId>* out) -> Status {
    if (p < overlay.base_pages() && !overlay.is_tombstoned(p)) {
      LinkView view;
      WG_RETURN_IF_ERROR(cursor->Links(p, &view));
      overlay.MergeLinks(p, {view.data(), view.size()}, &merged);
    } else {
      overlay.MergeLinks(p, {}, &merged);
    }
    out->insert(out->end(), merged.begin(), merged.end());
    return Status::OK();
  };

  // Layout in supernode order, dense blob ids, intranode first -- the
  // same linear order as a full build, whether a section is shared or
  // re-encoded. Sections are processed serially: the dirty set is small
  // by design, and serial layout keeps ids deterministic.
  double encode_seconds = 0;
  double layout_seconds = 0;
  sg.offsets.push_back(0);
  EncodedSection section;
  for (uint32_t s = 0; s < n_super; ++s) {
    bool clean = s < maintained.num_old_elements && maintained.dirty[s] == 0;
    if (clean) {
      // Share the whole base section: same targets, same bytes, new
      // dense ids. file_index values carry over because the new file
      // list starts with the base's.
      auto t_layout = std::chrono::steady_clock::now();
      uint32_t first = base_sg.intranode_blob[s];
      uint32_t n_out = base_sg.offsets[s + 1] - base_sg.offsets[s];
      sg.intranode_blob.push_back(
          static_cast<uint32_t>(manifest.blobs.size()));
      manifest.blobs.push_back(base_manifest.blobs[first]);
      for (uint32_t k = 0; k < n_out; ++k) {
        sg.targets.push_back(base_sg.targets[base_sg.offsets[s] + k]);
        sg.superedge_blob.push_back(
            static_cast<uint32_t>(manifest.blobs.size()));
        manifest.blobs.push_back(base_manifest.blobs[first + 1 + k]);
      }
      manifest.blobs_shared += 1 + n_out;
      sg.offsets.push_back(static_cast<uint32_t>(sg.targets.size()));
      layout_seconds += SecondsSince(t_layout);
      continue;
    }
    auto t_encode = std::chrono::steady_clock::now();
    WG_RETURN_IF_ERROR(EncodeSupernodeSection(
        s, partition.elements[s], links_of, owner, state.new_of_orig,
        sg.page_start, options.intranode, options.superedge, &section));
    encode_seconds += SecondsSince(t_encode);
    auto t_layout = std::chrono::steady_clock::now();
    sg.intranode_blob.push_back(static_cast<uint32_t>(manifest.blobs.size()));
    WG_RETURN_IF_ERROR(emit_blob(section.intranode));
    for (size_t k = 0; k < section.targets.size(); ++k) {
      sg.targets.push_back(section.targets[k]);
      sg.superedge_blob.push_back(
          static_cast<uint32_t>(manifest.blobs.size()));
      WG_RETURN_IF_ERROR(emit_blob(section.superedges[k]));
    }
    sg.offsets.push_back(static_cast<uint32_t>(sg.targets.size()));
    layout_seconds += SecondsSince(t_layout);
  }

  // Register this generation's pack files (relative names), fsynced
  // first: the manifest that names them publishes right after this.
  if (pack != nullptr) {
    WG_RETURN_IF_ERROR(pack->SyncAll());
    for (uint32_t f = 0; f < pack->num_files(); ++f) {
      const std::string& path = pack->FilePath(f);
      manifest.files.push_back(path.substr(dir.size() + 1));
    }
  }

  // Domain index: old elements keep their ids, so the base index carries
  // over; new elements append under their own domains.
  sg.domain_supernodes = base_sg.domain_supernodes;
  for (size_t i = 0; i < maintained.new_element_domains.size(); ++i) {
    sg.domain_supernodes[maintained.new_element_domains[i]].push_back(
        static_cast<uint32_t>(maintained.num_old_elements + i));
  }

  state.Serialize(&manifest.resident);

  span.AddArg("blobs_shared", manifest.blobs_shared);
  span.AddArg("blobs_written", manifest.blobs_written);
  if (stats != nullptr) {
    stats->encode_seconds = encode_seconds;
    stats->layout_seconds = layout_seconds;
    stats->total_seconds = stats->refine_seconds + SecondsSince(t_total);
    stats->PublishTo(
        obs::MetricRegistry::Default(),
        {{"build", std::to_string(obs::NextInstanceId())}});
  }
  return manifest;
}

}  // namespace wg::version
