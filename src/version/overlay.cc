#include "version/overlay.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace wg::version {

namespace {

// Sorted-unique vector helpers for the small per-page edit lists.
bool SortedInsert(std::vector<PageId>* v, PageId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}

bool SortedErase(std::vector<PageId>* v, PageId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) return false;
  v->erase(it);
  return true;
}

}  // namespace

Status DeltaOverlay::Apply(const DeltaRecord& record) {
  switch (record.kind) {
    case DeltaRecord::Kind::kAddPage: {
      if (record.page != num_pages()) {
        return Status::InvalidArgument(
            "overlay: added page id must be the next dense id");
      }
      if (record.url.empty() || record.host.empty() || record.domain.empty()) {
        return Status::InvalidArgument("overlay: added page needs metadata");
      }
      added_.push_back({record.url, record.host, record.domain});
      return Status::OK();
    }
    case DeltaRecord::Kind::kRemovePage: {
      if (record.page >= num_pages()) {
        return Status::OutOfRange("overlay: removed page out of range");
      }
      if (is_tombstoned(record.page)) {
        return Status::InvalidArgument("overlay: page already removed");
      }
      tombstoned_.insert(record.page);
      // The tombstone wipes the page's whole adjacency; pending edits for
      // it are moot.
      edits_.erase(record.page);
      return Status::OK();
    }
    case DeltaRecord::Kind::kAddLink:
    case DeltaRecord::Kind::kRemoveLink: {
      if (record.from >= num_pages() || record.to >= num_pages()) {
        return Status::OutOfRange("overlay: link endpoint out of range");
      }
      if (record.from == record.to) {
        return Status::InvalidArgument("overlay: self-loop");
      }
      if (is_tombstoned(record.from) || is_tombstoned(record.to)) {
        return Status::InvalidArgument("overlay: link touches removed page");
      }
      LinkEdit& edit = edits_[record.from];
      if (record.kind == DeltaRecord::Kind::kAddLink) {
        // Re-adding a link this overlay removed just cancels the removal.
        if (!SortedErase(&edit.removes, record.to)) {
          SortedInsert(&edit.adds, record.to);
        }
      } else {
        if (!SortedErase(&edit.adds, record.to)) {
          SortedInsert(&edit.removes, record.to);
        }
      }
      if (edit.adds.empty() && edit.removes.empty()) {
        edits_.erase(record.from);
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("overlay: unknown delta kind");
}

std::vector<PageId> DeltaOverlay::DirtySources() const {
  std::vector<PageId> dirty;
  dirty.reserve(edits_.size() + tombstoned_.size() + added_.size());
  for (const auto& [p, edit] : edits_) dirty.push_back(p);
  for (PageId p : tombstoned_) dirty.push_back(p);
  for (size_t i = 0; i < added_.size(); ++i) {
    dirty.push_back(static_cast<PageId>(base_pages_ + i));
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

void DeltaOverlay::MergeLinks(PageId p, std::span<const PageId> base,
                              std::vector<PageId>* out) const {
  out->clear();
  if (is_tombstoned(p)) return;
  auto it = edits_.find(p);
  if (it == edits_.end()) {
    out->assign(base.begin(), base.end());
  } else {
    const LinkEdit& edit = it->second;
    std::set_difference(base.begin(), base.end(), edit.removes.begin(),
                        edit.removes.end(), std::back_inserter(*out));
    if (!edit.adds.empty()) {
      std::vector<PageId> merged;
      merged.reserve(out->size() + edit.adds.size());
      std::set_union(out->begin(), out->end(), edit.adds.begin(),
                     edit.adds.end(), std::back_inserter(merged));
      out->swap(merged);
    }
  }
  if (has_tombstones()) {
    out->erase(std::remove_if(out->begin(), out->end(),
                              [this](PageId q) { return is_tombstoned(q); }),
               out->end());
  }
}

size_t DeltaOverlay::MemoryUsage() const {
  size_t bytes = added_.size() * sizeof(NewPage) +
                 tombstoned_.size() * sizeof(PageId) * 2;
  for (const auto& np : added_) {
    bytes += np.url.size() + np.host.size() + np.domain.size();
  }
  for (const auto& [p, edit] : edits_) {
    bytes += sizeof(PageId) * (2 + edit.adds.size() + edit.removes.size());
  }
  return bytes;
}

class OverlayRepresentation::Cursor : public AdjacencyCursor {
 public:
  explicit Cursor(OverlayRepresentation* repr)
      : repr_(repr), base_cursor_(repr->base_->NewCursor()) {}

  Status Links(PageId p, LinkView* view) override {
    const DeltaOverlay& overlay = *repr_->overlay_;
    if (p >= overlay.num_pages()) {
      return Status::OutOfRange("page id out of range");
    }
    ++repr_->stats_.adjacency_requests;
    if (p < overlay.base_pages() && !overlay.has_tombstones() &&
        !overlay.links_dirty(p)) {
      // Clean page, no tombstones anywhere: the base scheme's answer is
      // the overlay's answer. Pass its view straight through, pin and
      // all -- the zero-copy fast path.
      WG_RETURN_IF_ERROR(base_cursor_->Links(p, view));
      repr_->stats_.edges_returned += view->size();
      return Status::OK();
    }
    scratch_.clear();
    if (p < overlay.base_pages() && !overlay.is_tombstoned(p)) {
      LinkView base_view;
      WG_RETURN_IF_ERROR(base_cursor_->Links(p, &base_view));
      overlay.MergeLinks(p, {base_view.data(), base_view.size()}, &scratch_);
    } else {
      overlay.MergeLinks(p, {}, &scratch_);
    }
    repr_->stats_.edges_returned += scratch_.size();
    *view = LinkView(scratch_.data(), scratch_.size());
    return Status::OK();
  }

 private:
  OverlayRepresentation* repr_;
  std::unique_ptr<AdjacencyCursor> base_cursor_;
  std::vector<PageId> scratch_;
};

Result<std::unique_ptr<OverlayRepresentation>> OverlayRepresentation::Make(
    GraphRepresentation* base, const DeltaOverlay* overlay) {
  if (overlay->base_pages() != base->num_pages()) {
    return Status::InvalidArgument(
        "overlay base_pages does not match base representation");
  }
  std::unique_ptr<OverlayRepresentation> repr(
      new OverlayRepresentation(base, overlay));
  repr->RegisterStats("overlay");

  std::unique_ptr<AdjacencyCursor> cursor = base->NewCursor();
  std::vector<PageId> merged;
  LinkView view;
  uint64_t edges = 0;
  if (overlay->has_tombstones()) {
    // Any page may have lost links into a tombstone; count everything.
    for (PageId p = 0; p < overlay->num_pages(); ++p) {
      if (p < overlay->base_pages() && !overlay->is_tombstoned(p)) {
        WG_RETURN_IF_ERROR(cursor->Links(p, &view));
        overlay->MergeLinks(p, {view.data(), view.size()}, &merged);
      } else {
        overlay->MergeLinks(p, {}, &merged);
      }
      edges += merged.size();
    }
  } else {
    edges = base->num_edges();
    for (PageId p : overlay->DirtySources()) {
      if (p < overlay->base_pages()) {
        WG_RETURN_IF_ERROR(cursor->Links(p, &view));
        edges -= view.size();
        overlay->MergeLinks(p, {view.data(), view.size()}, &merged);
      } else {
        overlay->MergeLinks(p, {}, &merged);
      }
      edges += merged.size();
    }
  }
  repr->num_edges_ = edges;
  return repr;
}

std::unique_ptr<AdjacencyCursor> OverlayRepresentation::NewCursor() {
  return std::make_unique<Cursor>(this);
}

Status OverlayRepresentation::PagesInDomain(const std::string& domain,
                                            std::vector<PageId>* out) {
  size_t first = out->size();
  WG_RETURN_IF_ERROR(base_->PagesInDomain(domain, out));
  const auto& added = overlay_->added_pages();
  for (size_t i = 0; i < added.size(); ++i) {
    if (added[i].domain == domain) {
      out->push_back(static_cast<PageId>(overlay_->base_pages() + i));
    }
  }
  std::sort(out->begin() + first, out->end());
  return Status::OK();
}

Result<WebGraph> ApplyOverlay(const WebGraph& base,
                              const DeltaOverlay& overlay) {
  if (overlay.base_pages() != base.num_pages()) {
    return Status::InvalidArgument(
        "overlay base_pages does not match base graph");
  }
  GraphBuilder builder;
  std::unordered_map<std::string, uint32_t> host_ids;
  for (uint32_t h = 0; h < base.num_hosts(); ++h) {
    builder.AddHost(base.host_name(h), base.domain_name(base.host_domain(h)));
    host_ids.emplace(base.host_name(h), h);
  }
  for (PageId p = 0; p < base.num_pages(); ++p) {
    builder.AddPage(base.url(p), base.host_id(p));
  }
  for (const NewPage& np : overlay.added_pages()) {
    auto [it, inserted] = host_ids.try_emplace(np.host, 0);
    if (inserted) it->second = builder.AddHost(np.host, np.domain);
    builder.AddPage(np.url, it->second);
  }
  std::vector<PageId> merged;
  for (PageId p = 0; p < overlay.num_pages(); ++p) {
    std::span<const PageId> base_links =
        p < base.num_pages() ? base.OutLinks(p) : std::span<const PageId>{};
    overlay.MergeLinks(p, base_links, &merged);
    for (PageId q : merged) builder.AddLink(p, q);
  }
  return builder.Build();
}

}  // namespace wg::version
