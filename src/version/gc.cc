#include "version/gc.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "storage/file.h"
#include "version/manifest.h"

namespace wg::version {

namespace {

Result<std::string> ReadCurrentName(const std::string& dir) {
  WG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> current,
                      RandomAccessFile::Open(dir + "/CURRENT"));
  if (current->size() == 0 || current->size() > 256) {
    return Status::NotFound("gc: no CURRENT in " + dir);
  }
  std::string name(current->size(), '\0');
  WG_RETURN_IF_ERROR(current->Read(0, name.size(), name.data()));
  while (!name.empty() && (name.back() == '\n' || name.back() == '\0')) {
    name.pop_back();
  }
  return name;
}

Result<uint64_t> FileSizeOf(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("gc: stat " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

Status CollectGarbage(const std::string& dir, const GcOptions& options,
                      GcReport* report) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  obs::Counter scanned = registry.GetCounter(
      "wg_version_gc_scanned_total", {}, "Pack files examined by gc");
  obs::Counter candidates_counter = registry.GetCounter(
      "wg_version_gc_candidates_total", {},
      "Unreferenced pack files found by gc");
  obs::Counter removed = registry.GetCounter(
      "wg_version_gc_removed_total", {}, "Pack files unlinked by gc");
  obs::Counter reclaimed = registry.GetCounter(
      "wg_version_gc_reclaimed_bytes_total", {},
      "Bytes of pack files unlinked by gc");

  WG_ASSIGN_OR_RETURN(std::string manifest_name, ReadCurrentName(dir));
  WG_ASSIGN_OR_RETURN(Manifest manifest,
                      Manifest::ReadFrom(dir + "/" + manifest_name));

  // Referenced = packs some live blob actually reads. The manifest's
  // `files` table is append-only and may name packs no blob indexes
  // anymore -- those are exactly the garbage.
  std::set<std::string> referenced;
  for (const ManifestBlob& b : manifest.blobs) {
    referenced.insert(manifest.files[b.file_index]);
  }

  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError("gc: opendir " + dir);
  std::vector<std::string> candidates;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    // Only gen-* packs are ever eligible; everything else (CURRENT,
    // MANIFEST-*, deltas.log, unknown files) is out of scope.
    if (name.rfind("gen-", 0) != 0) continue;
    ++scanned;
    ++report->packs_scanned;
    if (referenced.count(name) != 0) {
      ++report->packs_referenced;
      continue;
    }
    candidates.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(candidates.begin(), candidates.end());

  for (const std::string& name : candidates) {
    std::string path = dir + "/" + name;
    auto size = FileSizeOf(path);
    uint64_t bytes = size.ok() ? size.value() : 0;
    ++candidates_counter;
    report->bytes_reclaimable += bytes;
    if (options.apply) {
      WG_RETURN_IF_ERROR(RemoveFileIfExists(path));
      ++removed;
      reclaimed += bytes;
      ++report->packs_removed;
      report->bytes_reclaimed += bytes;
    }
  }
  if (options.apply && !candidates.empty()) {
    // Make the unlinks durable before reporting them reclaimed.
    WG_RETURN_IF_ERROR(SyncDirectory(dir));
  }
  report->candidates = std::move(candidates);
  return Status::OK();
}

}  // namespace wg::version
