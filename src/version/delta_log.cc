#include "version/delta_log.h"

#include <unistd.h>

#include <utility>

#include "storage/serial.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace wg::version {

namespace {

constexpr size_t kFrameHeader = 8;  // fixed32 length + fixed32 crc
// A delta record is a handful of varints plus three short strings; a frame
// claiming more than this is torn-length garbage, not a record.
constexpr uint32_t kMaxPayload = 1 << 20;

void EncodeRecord(const DeltaRecord& r, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(r.kind));
  switch (r.kind) {
    case DeltaRecord::Kind::kAddPage:
      PutVarint32(out, r.page);
      PutVarint64(out, r.url.size());
      out->append(r.url);
      PutVarint64(out, r.host.size());
      out->append(r.host);
      PutVarint64(out, r.domain.size());
      out->append(r.domain);
      break;
    case DeltaRecord::Kind::kRemovePage:
      PutVarint32(out, r.page);
      break;
    case DeltaRecord::Kind::kAddLink:
    case DeltaRecord::Kind::kRemoveLink:
      PutVarint32(out, r.from);
      PutVarint32(out, r.to);
      break;
  }
}

bool DecodeRecord(const char* data, size_t size, DeltaRecord* r) {
  SerialCursor cursor(data, size);
  uint32_t kind = 0;
  if (!cursor.ReadVarint32(&kind)) return false;
  switch (static_cast<DeltaRecord::Kind>(kind)) {
    case DeltaRecord::Kind::kAddPage:
      r->kind = DeltaRecord::Kind::kAddPage;
      if (!cursor.ReadVarint32(&r->page) || !cursor.ReadString(&r->url) ||
          !cursor.ReadString(&r->host) || !cursor.ReadString(&r->domain)) {
        return false;
      }
      break;
    case DeltaRecord::Kind::kRemovePage:
      r->kind = DeltaRecord::Kind::kRemovePage;
      if (!cursor.ReadVarint32(&r->page)) return false;
      break;
    case DeltaRecord::Kind::kAddLink:
    case DeltaRecord::Kind::kRemoveLink:
      r->kind = static_cast<DeltaRecord::Kind>(kind);
      if (!cursor.ReadVarint32(&r->from) || !cursor.ReadVarint32(&r->to)) {
        return false;
      }
      break;
    default:
      return false;
  }
  // A valid frame holds exactly one record; trailing bytes mean the CRC
  // matched garbage (or a future, unknown format) -- reject either way.
  return cursor.exhausted();
}

// Walks the frames in `data`, calling `fn` for each fully valid record
// until the first invalid frame. Returns via *stats the valid prefix
// length, its record count, and the discarded remainder.
Status ScanFrames(const std::string& data,
                  const std::function<Status(const DeltaRecord&)>& fn,
                  DeltaLogRecoveryStats* stats) {
  size_t pos = 0;
  uint64_t records = 0;
  while (pos + kFrameHeader <= data.size()) {
    uint32_t length = DecodeFixed32(data.data() + pos);
    uint32_t crc = DecodeFixed32(data.data() + pos + 4);
    if (length > kMaxPayload || pos + kFrameHeader + length > data.size()) {
      break;  // torn length field or torn payload
    }
    const char* payload = data.data() + pos + kFrameHeader;
    if (Crc32(payload, length) != crc) break;  // torn or corrupt payload
    DeltaRecord record;
    if (!DecodeRecord(payload, length, &record)) break;
    if (fn != nullptr) WG_RETURN_IF_ERROR(fn(record));
    pos += kFrameHeader + length;
    ++records;
  }
  if (stats != nullptr) {
    stats->records = records;
    stats->valid_bytes = pos;
    stats->dropped_bytes = data.size() - pos;
  }
  return Status::OK();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  WG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                      RandomAccessFile::Open(path));
  out->resize(file->size());
  if (file->size() == 0) return Status::OK();
  return file->Read(0, out->size(), out->data());
}

}  // namespace

Result<std::unique_ptr<DeltaLog>> DeltaLog::Open(
    const std::string& path, DeltaLogRecoveryStats* stats) {
  std::string data;
  WG_RETURN_IF_ERROR(ReadWholeFile(path, &data));
  DeltaLogRecoveryStats recovery;
  WG_RETURN_IF_ERROR(ScanFrames(data, nullptr, &recovery));
  if (recovery.dropped_bytes > 0) {
    // Cut the torn tail off on disk before appending over it; reopen so
    // the file handle's cached size matches the truncated file.
    if (::truncate(path.c_str(),
                   static_cast<off_t>(recovery.valid_bytes)) != 0) {
      return Status::IOError("delta log: truncate failed: " + path);
    }
  }
  WG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                      RandomAccessFile::Open(path));
  if (stats != nullptr) *stats = recovery;
  std::unique_ptr<DeltaLog> log(new DeltaLog(std::move(file)));
  log->num_records_ = recovery.records;
  log->valid_bytes_ = recovery.valid_bytes;
  return log;
}

Status DeltaLog::TailFromDisk() {
  // Fresh open: file_'s cached size does not see external growth.
  WG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                      RandomAccessFile::Open(file_->path()));
  if (file->size() <= valid_bytes_) return Status::OK();
  std::string data;
  data.resize(file->size() - valid_bytes_);
  WG_RETURN_IF_ERROR(file->Read(valid_bytes_, data.size(), data.data()));
  DeltaLogRecoveryStats stats;
  WG_RETURN_IF_ERROR(ScanFrames(data, nullptr, &stats));
  num_records_ += stats.records;
  valid_bytes_ += stats.valid_bytes;
  return Status::OK();
}

Status DeltaLog::Append(const DeltaRecord& record) {
  std::string payload;
  EncodeRecord(record, &payload);
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  WG_RETURN_IF_ERROR(file_->Append(frame.data(), frame.size()));
  ++num_records_;
  valid_bytes_ += frame.size();
  return Status::OK();
}

Status DeltaLog::Replay(const std::string& path, uint64_t skip_records,
                        const std::function<Status(const DeltaRecord&)>& fn,
                        DeltaLogRecoveryStats* stats) {
  std::string data;
  WG_RETURN_IF_ERROR(ReadWholeFile(path, &data));
  uint64_t seen = 0;
  return ScanFrames(
      data,
      [&](const DeltaRecord& record) {
        if (seen++ < skip_records) return Status::OK();
        return fn(record);
      },
      stats);
}

}  // namespace wg::version
