#ifndef WG_QUERY_QUERIES_H_
#define WG_QUERY_QUERIES_H_

#include <string>
#include <vector>

#include "graph/webgraph.h"
#include "query/ops.h"
#include "repr/representation.h"
#include "text/corpus.h"
#include "text/inverted_index.h"

// The six complex queries of the paper's Table 3, expressed against the
// text index, PageRank index, and a pair of graph representations (forward
// WG and backward WG^T). Each query reports its ranked answer plus the
// time spent purely in graph navigation -- the metric Figure 11 plots.
//
// Query plans are hand-crafted, exactly as in the paper ("we hand-crafted
// execution plans and used simple scripts"): text/PageRank index accesses
// happen first and are not timed; only the navigation primitives are.

namespace wg {

struct QueryContext {
  GraphRepresentation* forward = nullptr;   // WG representation
  GraphRepresentation* backward = nullptr;  // WG^T representation
  const WebGraph* graph = nullptr;  // metadata only (domains/URLs); query
                                    // code must not read adjacency from it
  const Corpus* corpus = nullptr;
  const InvertedIndex* index = nullptr;
  const std::vector<double>* pagerank = nullptr;
};

struct QueryResult {
  // Ranked output rows: label (domain/URL/comic) with score, best first.
  std::vector<std::pair<std::string, double>> ranked;
  // Time spent in graph navigation only (seconds).
  double navigation_seconds = 0;
};

// Query 1 (Analysis 1): universities Stanford "Mobile networking" pages
// refer to, weighted by normalized PageRank of the linking pages.
Result<QueryResult> RunQuery1(const QueryContext& ctx);

// Query 2 (Analysis 2): relative popularity of three comic strips among
// stanford.edu pages (word matches + link counts).
Result<QueryResult> RunQuery2(const QueryContext& ctx);

// Query 3: Kleinberg base set of the top-100-PageRank pages containing
// "internet censorship".
Result<QueryResult> RunQuery3(const QueryContext& ctx);

// Query 4: 10 most popular "quantum cryptography" pages at each of four
// universities; popularity = in-links from outside the page's domain.
Result<QueryResult> RunQuery4(const QueryContext& ctx);

// Query 5: pages with "computer music synthesis" ranked by in-links from
// within the set; top 10 .edu pages.
Result<QueryResult> RunQuery5(const QueryContext& ctx);

// Query 6: pages outside stanford/berkeley pointed to by "optical
// interferometry" pages of both, ranked by in-links from those sets.
Result<QueryResult> RunQuery6(const QueryContext& ctx);

// Dispatch by query number 1..6.
Result<QueryResult> RunQuery(int number, const QueryContext& ctx);

inline constexpr int kNumQueries = 6;

}  // namespace wg

#endif  // WG_QUERY_QUERIES_H_
