#ifndef WG_QUERY_OPS_H_
#define WG_QUERY_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "repr/representation.h"

// Navigation primitives over any GraphRepresentation: the building blocks
// of the paper's complex queries (rightmost column of Table 3). Every
// primitive accumulates its wall-clock time into a NavClock so experiments
// can report the navigation component of query execution exactly as the
// paper does (Section 4.3 times only graph access, not text/PageRank index
// access).

namespace wg {

// Accumulates navigation time across primitives.
class NavClock {
 public:
  void Add(double seconds) { seconds_ += seconds; }
  double seconds() const { return seconds_; }
  void Reset() { seconds_ = 0; }

 private:
  double seconds_ = 0;
};

// Sorted-set helpers (inputs/outputs sorted, deduplicated).
std::vector<PageId> SetUnion(const std::vector<PageId>& a,
                             const std::vector<PageId>& b);
std::vector<PageId> SetIntersect(const std::vector<PageId>& a,
                                 const std::vector<PageId>& b);
std::vector<PageId> SetDifference(const std::vector<PageId>& a,
                                  const std::vector<PageId>& b);

// Union of out-links (or in-links, if `repr` is a transpose) of `set`,
// sorted + deduplicated.
Status Neighborhood(GraphRepresentation* repr, const std::vector<PageId>& set,
                    NavClock* clock, std::vector<PageId>* out);

// Per-source adjacency visit: calls `visit(source, links)` for each page.
// The workhorse behind counting and weighting primitives. The whole batch
// streams through one cursor in locality order, so the view passed to the
// callback is borrowed -- valid only for the duration of that call.
Status VisitAdjacency(GraphRepresentation* repr, const std::vector<PageId>& set,
                      NavClock* clock,
                      const std::function<void(PageId, const LinkView&)>& visit);

// Visits, for each source, its links restricted to the sorted `targets`
// set, using the representation's filtered path (S-Node prunes whole
// superedge graphs through its supernode graph).
Status VisitLinksBetween(
    GraphRepresentation* repr, const std::vector<PageId>& sources,
    const std::vector<PageId>& targets, NavClock* clock,
    const std::function<void(PageId, const std::vector<PageId>&)>& visit);

// Number of links from pages in `from` to pages in `to` (both sorted).
Status CountLinksBetween(GraphRepresentation* repr,
                         const std::vector<PageId>& from,
                         const std::vector<PageId>& to, NavClock* clock,
                         uint64_t* count);

// For every page of `targets` (sorted), the number of links into it from
// pages of `sources` (sorted). Uses the transpose representation.
Status InLinkCounts(GraphRepresentation* backward,
                    const std::vector<PageId>& targets,
                    const std::vector<PageId>& sources, NavClock* clock,
                    std::vector<uint64_t>* counts);

}  // namespace wg

#endif  // WG_QUERY_OPS_H_
