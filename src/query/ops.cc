#include "query/ops.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>

namespace wg {

namespace {

class ScopedTimer {
 public:
  explicit ScopedTimer(NavClock* clock) : clock_(clock) {
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (clock_ != nullptr) {
      clock_->Add(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }

 private:
  NavClock* clock_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::vector<PageId> SetUnion(const std::vector<PageId>& a,
                             const std::vector<PageId>& b) {
  std::vector<PageId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<PageId> SetIntersect(const std::vector<PageId>& a,
                                 const std::vector<PageId>& b) {
  std::vector<PageId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<PageId> SetDifference(const std::vector<PageId>& a,
                                  const std::vector<PageId>& b) {
  std::vector<PageId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// Reorders `set` by the representation's locality key: batch requests in
// physical-layout order turn scattered fetches into near-sequential ones.
std::vector<PageId> LocalityOrder(GraphRepresentation* repr,
                                  const std::vector<PageId>& set) {
  std::vector<PageId> ordered(set);
  std::sort(ordered.begin(), ordered.end(), [repr](PageId a, PageId b) {
    return repr->LocalityKey(a) < repr->LocalityKey(b);
  });
  return ordered;
}

Status VisitAdjacency(GraphRepresentation* repr, const std::vector<PageId>& set,
                      NavClock* clock,
                      const std::function<void(PageId, const LinkView&)>& visit) {
  std::vector<PageId> ordered = LocalityOrder(repr, set);
  ScopedTimer timer(clock);
  std::unique_ptr<AdjacencyCursor> cursor = repr->NewCursor();
  LinkView links;
  for (PageId p : ordered) {
    WG_RETURN_IF_ERROR(cursor->Links(p, &links));
    visit(p, links);
  }
  return Status::OK();
}

Status VisitLinksBetween(
    GraphRepresentation* repr, const std::vector<PageId>& sources,
    const std::vector<PageId>& targets, NavClock* clock,
    const std::function<void(PageId, const std::vector<PageId>&)>& visit) {
  std::vector<PageId> ordered = LocalityOrder(repr, sources);
  ScopedTimer timer(clock);
  return repr->VisitLinksInto(ordered, targets, visit);
}

Status Neighborhood(GraphRepresentation* repr, const std::vector<PageId>& set,
                    NavClock* clock, std::vector<PageId>* out) {
  std::vector<PageId> collected;
  WG_RETURN_IF_ERROR(
      VisitAdjacency(repr, set, clock, [&collected](PageId, const LinkView& links) {
        links.AppendTo(&collected);
      }));
  std::sort(collected.begin(), collected.end());
  collected.erase(std::unique(collected.begin(), collected.end()),
                  collected.end());
  *out = std::move(collected);
  return Status::OK();
}

Status CountLinksBetween(GraphRepresentation* repr,
                         const std::vector<PageId>& from,
                         const std::vector<PageId>& to, NavClock* clock,
                         uint64_t* count) {
  uint64_t total = 0;
  WG_RETURN_IF_ERROR(VisitLinksBetween(
      repr, from, to, clock,
      [&total](PageId, const std::vector<PageId>& links) {
        total += links.size();
      }));
  *count = total;
  return Status::OK();
}

Status InLinkCounts(GraphRepresentation* backward,
                    const std::vector<PageId>& targets,
                    const std::vector<PageId>& sources, NavClock* clock,
                    std::vector<uint64_t>* counts) {
  counts->assign(targets.size(), 0);
  // Visitation order is locality-driven, so map each callback back to the
  // caller's target position.
  std::unordered_map<PageId, size_t> index_of;
  index_of.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) index_of[targets[i]] = i;
  WG_RETURN_IF_ERROR(VisitLinksBetween(
      backward, targets, sources, clock,
      [&](PageId p, const std::vector<PageId>& backlinks) {
        (*counts)[index_of[p]] = backlinks.size();
      }));
  return Status::OK();
}

}  // namespace wg
