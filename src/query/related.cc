#include "query/related.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace wg {

namespace {

std::vector<RelatedPage> TopK(std::unordered_map<PageId, double>& scores,
                              PageId seed, size_t k) {
  std::vector<RelatedPage> ranked;
  ranked.reserve(scores.size());
  for (const auto& [page, score] : scores) {
    if (page != seed && score > 0) ranked.push_back({page, score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RelatedPage& a, const RelatedPage& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.page < b.page;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace

Result<std::vector<RelatedPage>> RelatedByCocitation(
    GraphRepresentation* forward, GraphRepresentation* backward, PageId seed,
    const RelatedPagesOptions& options, NavClock* clock) {
  NavClock local;
  if (clock == nullptr) clock = &local;

  // Referrers of the seed (capped).
  std::vector<PageId> referrers;
  WG_RETURN_IF_ERROR(Neighborhood(backward, {seed}, clock, &referrers));
  if (referrers.size() > options.max_referrers) {
    referrers.resize(options.max_referrers);
  }

  // Everything those referrers link to, counted per target.
  std::unordered_map<PageId, double> scores;
  WG_RETURN_IF_ERROR(VisitAdjacency(
      forward, referrers, clock,
      [&scores](PageId, const LinkView& links) {
        for (PageId q : links) scores[q] += 1.0;
      }));
  return TopK(scores, seed, options.max_results);
}

Result<std::vector<RelatedPage>> RelatedByHits(
    GraphRepresentation* forward, GraphRepresentation* backward, PageId seed,
    const RelatedPagesOptions& options, NavClock* clock) {
  NavClock local;
  if (clock == nullptr) clock = &local;

  // Base set: seed + out-neighborhood + capped in-neighborhood.
  std::vector<PageId> out_n, in_n;
  WG_RETURN_IF_ERROR(Neighborhood(forward, {seed}, clock, &out_n));
  WG_RETURN_IF_ERROR(Neighborhood(backward, {seed}, clock, &in_n));
  if (in_n.size() > options.max_referrers) in_n.resize(options.max_referrers);
  std::vector<PageId> base = SetUnion({seed}, SetUnion(out_n, in_n));

  // Induced edges through the representation's filtered visit.
  std::unordered_map<PageId, uint32_t> local_id;
  local_id.reserve(base.size());
  for (uint32_t i = 0; i < base.size(); ++i) local_id[base[i]] = i;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  WG_RETURN_IF_ERROR(VisitLinksBetween(
      forward, base, base, clock,
      [&](PageId p, const std::vector<PageId>& links) {
        uint32_t from = local_id[p];
        for (PageId q : links) edges.emplace_back(from, local_id[q]);
      }));

  // Power iteration for hub/authority scores.
  size_t n = base.size();
  std::vector<double> hub(n, 1.0), authority(n, 1.0);
  auto normalize = [](std::vector<double>& v) {
    double norm = 0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& x : v) x /= norm;
    }
  };
  for (int iter = 0; iter < options.hits_iterations; ++iter) {
    std::vector<double> new_auth(n, 0.0), new_hub(n, 0.0);
    for (auto [i, j] : edges) new_auth[j] += hub[i];
    for (auto [i, j] : edges) new_hub[i] += new_auth[j];
    normalize(new_auth);
    normalize(new_hub);
    authority = std::move(new_auth);
    hub = std::move(new_hub);
  }

  std::unordered_map<PageId, double> scores;
  for (uint32_t i = 0; i < n; ++i) scores[base[i]] = authority[i];
  return TopK(scores, seed, options.max_results);
}

}  // namespace wg
