#ifndef WG_QUERY_RELATED_H_
#define WG_QUERY_RELATED_H_

#include <vector>

#include "query/ops.h"
#include "repr/representation.h"
#include "text/pagerank.h"

// "Find related pages" (Dean & Henzinger, the paper's citation [7]) on top
// of the representation layer: the paper's Observation 3 says pages with
// similar adjacency lists are topically related, and its Section 1.1
// positions exactly this kind of discovery as a target workload.
//
// Two classic signals are implemented, both expressed through the
// navigation primitives so they run against any GraphRepresentation:
//
//  * co-citation: pages frequently linked together with the seed by the
//    same referrers (companion algorithm);
//  * HITS authorities over the seed's Kleinberg base set.

namespace wg {

struct RelatedPage {
  PageId page;
  double score;
};

struct RelatedPagesOptions {
  // Cap on the referrers examined (hubs with enormous backlink sets are
  // truncated, as Dean & Henzinger do).
  size_t max_referrers = 200;
  size_t max_results = 10;
  int hits_iterations = 25;
};

// Co-citation: score(q) = number of pages that link to both `seed` and q.
// Needs the backward representation for the seed's referrers and the
// forward one for their out-links.
Result<std::vector<RelatedPage>> RelatedByCocitation(
    GraphRepresentation* forward, GraphRepresentation* backward, PageId seed,
    const RelatedPagesOptions& options, NavClock* clock = nullptr);

// HITS authorities over the base set of {seed}: the seed, its
// out-neighborhood, and (capped) in-neighborhood, scored on the induced
// subgraph. Requires the ground-truth graph only for the induced edges,
// which it reads through the representations.
Result<std::vector<RelatedPage>> RelatedByHits(
    GraphRepresentation* forward, GraphRepresentation* backward, PageId seed,
    const RelatedPagesOptions& options, NavClock* clock = nullptr);

}  // namespace wg

#endif  // WG_QUERY_RELATED_H_
