#include "query/queries.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace wg {

namespace {

// Pages of `domain` via the representation's domain index (sorted).
Result<std::vector<PageId>> DomainPages(const QueryContext& ctx,
                                        const std::string& domain) {
  std::vector<PageId> pages;
  WG_RETURN_IF_ERROR(ctx.forward->PagesInDomain(domain, &pages));
  return pages;
}

// Pages matching a phrase token, via the (untimed) text index.
std::vector<PageId> PhrasePages(const QueryContext& ctx,
                                const std::string& phrase) {
  return ctx.index->Lookup(*ctx.corpus, phrase);
}

bool IsEduDomain(const std::string& domain) {
  return domain.size() > 4 &&
         domain.compare(domain.size() - 4, 4, ".edu") == 0;
}

void SortRankedDescending(
    std::vector<std::pair<std::string, double>>* ranked) {
  std::stable_sort(ranked->begin(), ranked->end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
}

}  // namespace

Result<QueryResult> RunQuery1(const QueryContext& ctx) {
  QueryResult result;
  NavClock clock;

  // S: stanford.edu pages containing the phrase, weighted by normalized
  // PageRank (all untimed index work).
  WG_ASSIGN_OR_RETURN(std::vector<PageId> stanford,
                      DomainPages(ctx, "stanford.edu"));
  std::vector<PageId> s =
      SetIntersect(stanford, PhrasePages(ctx, "mobile networking"));
  double total_rank = 0;
  for (PageId p : s) total_rank += (*ctx.pagerank)[p];
  std::unordered_map<PageId, double> weight;
  for (PageId p : s) {
    weight[p] = total_rank > 0 ? (*ctx.pagerank)[p] / total_rank : 0.0;
  }

  // Navigation: links from S into .edu domains other than stanford.edu.
  // The target set is assembled from the (untimed) domain index; the
  // restricted visit lets S-Node prune superedge graphs that cannot hold
  // .edu links.
  std::vector<PageId> edu_targets;
  for (uint32_t d = 0; d < ctx.graph->num_domains(); ++d) {
    const std::string& name = ctx.graph->domain_name(d);
    if (name == "stanford.edu" || !IsEduDomain(name)) continue;
    WG_RETURN_IF_ERROR(ctx.forward->PagesInDomain(name, &edu_targets));
  }
  std::sort(edu_targets.begin(), edu_targets.end());

  std::map<std::string, double> domain_weight;
  WG_RETURN_IF_ERROR(VisitLinksBetween(
      ctx.forward, s, edu_targets, &clock,
      [&](PageId p, const std::vector<PageId>& links) {
        // "p points to domain D" counts once per (page, domain).
        const std::string* prev = nullptr;
        for (PageId q : links) {
          const std::string& domain =
              ctx.graph->domain_name(ctx.graph->domain_id(q));
          if (prev == nullptr || *prev != domain) {
            domain_weight[domain] += weight[p];
          }
          prev = &domain;
        }
      }));

  for (const auto& [domain, w] : domain_weight) {
    result.ranked.emplace_back(domain, w);
  }
  SortRankedDescending(&result.ranked);
  result.navigation_seconds = clock.seconds();
  return result;
}

Result<QueryResult> RunQuery2(const QueryContext& ctx) {
  struct Comic {
    const char* name;
    const char* site;
    std::vector<std::string> words;
  };
  const std::vector<Comic> comics = {
      {"Dilbert", "dilbert.com", {"dilbert", "dogbert", "the boss"}},
      {"Doonesbury", "doonesbury.com", {"doonesbury", "zonker", "duke"}},
      {"Peanuts", "peanuts.com", {"peanuts", "snoopy", "charlie brown"}},
  };

  QueryResult result;
  NavClock clock;
  WG_ASSIGN_OR_RETURN(std::vector<PageId> stanford,
                      DomainPages(ctx, "stanford.edu"));
  for (const Comic& comic : comics) {
    // C1: stanford pages with >= 2 of the comic's words (text index).
    std::vector<PageId> word_pages =
        ctx.index->LookupAtLeast(*ctx.corpus, comic.words, 2);
    uint64_t c1 = SetIntersect(stanford, word_pages).size();
    // C2: links from stanford.edu into the comic's site (navigation).
    WG_ASSIGN_OR_RETURN(std::vector<PageId> site_pages,
                        DomainPages(ctx, comic.site));
    uint64_t c2 = 0;
    WG_RETURN_IF_ERROR(
        CountLinksBetween(ctx.forward, stanford, site_pages, &clock, &c2));
    result.ranked.emplace_back(comic.name, static_cast<double>(c1 + c2));
  }
  SortRankedDescending(&result.ranked);
  result.navigation_seconds = clock.seconds();
  return result;
}

Result<QueryResult> RunQuery3(const QueryContext& ctx) {
  QueryResult result;
  NavClock clock;

  // Root set: top 100 pages by PageRank containing the phrase.
  std::vector<PageId> matches = PhrasePages(ctx, "internet censorship");
  std::stable_sort(matches.begin(), matches.end(), [&](PageId a, PageId b) {
    return (*ctx.pagerank)[a] > (*ctx.pagerank)[b];
  });
  if (matches.size() > 100) matches.resize(100);
  std::sort(matches.begin(), matches.end());

  // Base set = root ∪ out-neighborhood ∪ in-neighborhood (Kleinberg).
  std::vector<PageId> out_n, in_n;
  WG_RETURN_IF_ERROR(Neighborhood(ctx.forward, matches, &clock, &out_n));
  WG_RETURN_IF_ERROR(Neighborhood(ctx.backward, matches, &clock, &in_n));
  std::vector<PageId> base = SetUnion(matches, SetUnion(out_n, in_n));

  result.ranked.emplace_back("base-set-size",
                             static_cast<double>(base.size()));
  for (size_t i = 0; i < base.size() && i < 10; ++i) {
    result.ranked.emplace_back(ctx.graph->url(base[i]),
                               (*ctx.pagerank)[base[i]]);
  }
  result.navigation_seconds = clock.seconds();
  return result;
}

Result<QueryResult> RunQuery4(const QueryContext& ctx) {
  QueryResult result;
  NavClock clock;
  const std::vector<std::string> universities = {
      "stanford.edu", "mit.edu", "caltech.edu", "berkeley.edu"};
  std::vector<PageId> phrase = PhrasePages(ctx, "quantum cryptography");

  for (const std::string& domain : universities) {
    WG_ASSIGN_OR_RETURN(std::vector<PageId> dom_pages,
                        DomainPages(ctx, domain));
    std::vector<PageId> candidates = SetIntersect(dom_pages, phrase);
    // Popularity: in-links from pages outside the candidate's domain.
    std::vector<std::pair<PageId, uint64_t>> scored;
    scored.reserve(candidates.size());
    WG_RETURN_IF_ERROR(VisitAdjacency(
        ctx.backward, candidates, &clock,
        [&](PageId p, const LinkView& backlinks) {
          uint64_t external = 0;
          for (PageId q : backlinks) {
            if (!std::binary_search(dom_pages.begin(), dom_pages.end(), q)) {
              ++external;
            }
          }
          scored.emplace_back(p, external);
        }));
    // Deterministic order regardless of visitation order: ties by id.
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    for (size_t i = 0; i < scored.size() && i < 10; ++i) {
      result.ranked.emplace_back(ctx.graph->url(scored[i].first),
                                 static_cast<double>(scored[i].second));
    }
  }
  result.navigation_seconds = clock.seconds();
  return result;
}

Result<QueryResult> RunQuery5(const QueryContext& ctx) {
  QueryResult result;
  NavClock clock;
  std::vector<PageId> s = PhrasePages(ctx, "computer music synthesis");

  // In-link counts restricted to S (the graph induced by S).
  std::vector<uint64_t> counts;
  WG_RETURN_IF_ERROR(InLinkCounts(ctx.backward, s, s, &clock, &counts));

  std::vector<std::pair<PageId, uint64_t>> scored;
  for (size_t i = 0; i < s.size(); ++i) {
    const std::string& domain =
        ctx.graph->domain_name(ctx.graph->domain_id(s[i]));
    if (IsEduDomain(domain)) scored.emplace_back(s[i], counts[i]);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (size_t i = 0; i < scored.size() && i < 10; ++i) {
    result.ranked.emplace_back(ctx.graph->url(scored[i].first),
                               static_cast<double>(scored[i].second));
  }
  result.navigation_seconds = clock.seconds();
  return result;
}

Result<QueryResult> RunQuery6(const QueryContext& ctx) {
  QueryResult result;
  NavClock clock;
  std::vector<PageId> phrase = PhrasePages(ctx, "optical interferometry");
  WG_ASSIGN_OR_RETURN(std::vector<PageId> stanford,
                      DomainPages(ctx, "stanford.edu"));
  WG_ASSIGN_OR_RETURN(std::vector<PageId> berkeley,
                      DomainPages(ctx, "berkeley.edu"));
  std::vector<PageId> s1 = SetIntersect(stanford, phrase);
  std::vector<PageId> s2 = SetIntersect(berkeley, phrase);

  // R: intersection of the two out-neighborhoods, minus both domains.
  std::vector<PageId> n1, n2;
  WG_RETURN_IF_ERROR(Neighborhood(ctx.forward, s1, &clock, &n1));
  WG_RETURN_IF_ERROR(Neighborhood(ctx.forward, s2, &clock, &n2));
  std::vector<PageId> r = SetIntersect(n1, n2);
  r = SetDifference(SetDifference(r, stanford), berkeley);

  // Rank by in-links from S1 ∪ S2.
  std::vector<PageId> s12 = SetUnion(s1, s2);
  std::vector<uint64_t> counts;
  WG_RETURN_IF_ERROR(InLinkCounts(ctx.backward, r, s12, &clock, &counts));
  for (size_t i = 0; i < r.size(); ++i) {
    result.ranked.emplace_back(ctx.graph->url(r[i]),
                               static_cast<double>(counts[i]));
  }
  SortRankedDescending(&result.ranked);
  result.navigation_seconds = clock.seconds();
  return result;
}

Result<QueryResult> RunQuery(int number, const QueryContext& ctx) {
  switch (number) {
    case 1:
      return RunQuery1(ctx);
    case 2:
      return RunQuery2(ctx);
    case 3:
      return RunQuery3(ctx);
    case 4:
      return RunQuery4(ctx);
    case 5:
      return RunQuery5(ctx);
    case 6:
      return RunQuery6(ctx);
    default:
      return Status::InvalidArgument("query number must be 1..6");
  }
}

}  // namespace wg
