#include "server/query_service.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

namespace wg::server {

namespace {

bool DeadlinePassed(const Request& request,
                    std::chrono::steady_clock::time_point now) {
  return request.has_deadline() && now > request.deadline;
}

}  // namespace

QueryService::QueryService(const QueryContext& ctx,
                           const QueryServiceOptions& options)
    : ctx_(ctx),
      options_(options),
      queue_(std::max<size_t>(1, options.queue_capacity)) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  obs::Labels labels = {
      {"service", std::to_string(obs::NextInstanceId())}};
  // Bind (not assign): Counter assignment is value-semantic, so
  // `counter = registry.GetCounter(...)` would copy the registry cell's
  // value into the private cell and leave the registry series dead.
  auto bind = [&](obs::Counter& counter, const char* name) {
    obs::Labels with = labels;
    with.emplace_back("outcome", name);
    counter.Bind(registry, "wg_service_requests_total", with,
                 "Requests by admission/execution outcome");
  };
  bind(submitted_, "submitted");
  bind(completed_, "completed");
  bind(rejected_, "rejected");
  bind(timed_out_, "timed_out");
  bind(errors_, "error");
  queue_depth_ = registry.GetGauge("wg_service_queue_depth", labels,
                                   "Requests waiting at last snapshot");
  latency_.Bind(registry, "wg_service_latency_us", labels,
                "Enqueue-to-completion latency (microseconds)");
  size_t n = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    return;  // already shut down
  }
  queue_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::future<Response> QueryService::Submit(Request request) {
  ++submitted_;
  Job job;
  job.request = request;
  job.enqueued = std::chrono::steady_clock::now();
  std::future<Response> future = job.promise.get_future();
  if (!queue_.TryPush(std::move(job))) {
    // Backpressure: refuse now instead of queueing unboundedly. The caller
    // sees kRejected and can retry with its own policy.
    ++rejected_;
    Response response;
    response.code = ResponseCode::kRejected;
    std::promise<Response> immediate;
    future = immediate.get_future();
    immediate.set_value(std::move(response));
  }
  return future;
}

void QueryService::WorkerLoop() {
  Job job;
  while (queue_.Pop(&job)) {
    Response response;
    auto now = std::chrono::steady_clock::now();
    if (DeadlinePassed(job.request, now)) {
      // Expired while waiting in the queue: don't waste the worker on it.
      response.code = ResponseCode::kDeadlineExceeded;
    } else {
      response = Execute(job.request);
    }
    auto done = std::chrono::steady_clock::now();
    response.latency_seconds =
        std::chrono::duration<double>(done - job.enqueued).count();
    // Slow-request attribution: latency here includes queue wait, which
    // the request's root span cannot see. Observations past the tracez
    // slow threshold capture the trace id as the latency histogram's
    // exemplar and pin the trace into the /tracez slow list.
    double latency_us = response.latency_seconds * 1e6;
    obs::Tracer& tracer = obs::Tracer::Global();
    if (response.trace_id != 0 && tracer.ring_enabled() &&
        latency_us >= tracer.ring().slow_threshold_us()) {
      latency_.RecordWithExemplar(response.latency_seconds,
                                  response.trace_id);
      tracer.ring().MarkSlow(response.trace_id, latency_us);
    } else {
      latency_.Record(response.latency_seconds);
    }
    switch (response.code) {
      case ResponseCode::kOk:
        ++completed_;
        break;
      case ResponseCode::kDeadlineExceeded:
        ++timed_out_;
        break;
      case ResponseCode::kError:
        ++errors_;
        break;
      case ResponseCode::kRejected:
        break;  // never produced by Execute
    }
    job.promise.set_value(std::move(response));
  }
}

void QueryService::SwapForward(std::shared_ptr<GraphRepresentation> forward) {
  {
    std::lock_guard<std::mutex> lock(forward_mu_);
    forward_override_ = forward;
  }
  // Outside the lock: the hook may do arbitrary work (start a warmer walk
  // over the new generation) and must not stall request admission.
  if (options_.on_swap) options_.on_swap(forward);
}

std::shared_ptr<GraphRepresentation> QueryService::CurrentForward() const {
  std::lock_guard<std::mutex> lock(forward_mu_);
  return forward_override_;
}

Response QueryService::Execute(const Request& request) const {
  // Root of the cross-layer request trace: spans opened below this frame
  // (repr access, cache miss, store read, pager load) nest under it when
  // the sampler selects this request. Covers both the worker-pool path
  // and inline callers.
  obs::Span trace(RequestTypeName(request.type), "service",
                  obs::Span::RootTag{});
  trace.AddArg("page", request.page);
  Response response;
  // Stamp before the span ends (it outlives this frame's locals only
  // until return): this is how WorkerLoop links the completed trace to
  // the latency it measures.
  response.trace_id = trace.trace_id();
  // Pin the forward representation once per request: a SwapForward racing
  // with this request flips later requests, never this one mid-flight.
  std::shared_ptr<GraphRepresentation> pinned = CurrentForward();
  GraphRepresentation* forward = pinned ? pinned.get() : ctx_.forward;
  if (request.simulated_work.count() > 0) {
    std::this_thread::sleep_for(request.simulated_work);
  }
  if (DeadlinePassed(request, std::chrono::steady_clock::now())) {
    response.code = ResponseCode::kDeadlineExceeded;
    return response;
  }
  Status status;
  switch (request.type) {
    case RequestType::kOutNeighbors:
      if (forward == nullptr) {
        status = Status::InvalidArgument("no forward representation");
      } else {
        status = CollectNeighbors(forward, request.page, &response.pages);
      }
      break;
    case RequestType::kInNeighbors:
      if (ctx_.backward == nullptr) {
        status = Status::InvalidArgument("no backward representation");
      } else {
        status = CollectNeighbors(ctx_.backward, request.page, &response.pages);
      }
      break;
    case RequestType::kKHop:
      if (forward == nullptr) {
        status = Status::InvalidArgument("no forward representation");
      } else {
        status = ExecuteKHop(request, forward, &response);
      }
      break;
    case RequestType::kComplexQuery: {
      QueryContext ctx = ctx_;  // per-request view with the pinned forward
      ctx.forward = forward;
      Result<QueryResult> result = RunQuery(request.query_number, ctx);
      if (result.ok()) {
        response.query = std::move(result).value();
      } else {
        status = result.status();
      }
      break;
    }
  }
  if (response.code == ResponseCode::kOk && !status.ok()) {
    response.code = ResponseCode::kError;
    response.status = std::move(status);
  }
  return response;
}

Status QueryService::CollectNeighbors(GraphRepresentation* repr, PageId page,
                                      std::vector<PageId>* out) {
  std::unique_ptr<AdjacencyCursor> cursor = repr->NewCursor();
  LinkView links;
  WG_RETURN_IF_ERROR(cursor->Links(page, &links));
  links.AppendTo(out);
  return Status::OK();
}

Status QueryService::ExecuteKHop(const Request& request,
                                 GraphRepresentation* repr,
                                 Response* response) const {
  if (request.page >= repr->num_pages()) {
    return Status::OutOfRange("page id out of range");
  }
  // Level-synchronous BFS; result = every page reachable in 1..k hops,
  // start page excluded. The whole expansion streams through one cursor,
  // and each frontier is visited in locality-key order, so pages of one
  // S-Node supernode arrive back-to-back and are served from the cursor's
  // assembled zero-copy views.
  std::unique_ptr<AdjacencyCursor> cursor = repr->NewCursor();
  std::vector<uint8_t> seen(repr->num_pages(), 0);
  std::vector<PageId> frontier = {request.page};
  std::vector<PageId> next;
  LinkView links;
  seen[request.page] = 1;
  for (int hop = 0; hop < request.k && !frontier.empty(); ++hop) {
    // A deadline can expire mid-expansion; check once per level so a huge
    // neighborhood cannot hold a worker past its budget.
    if (DeadlinePassed(request, std::chrono::steady_clock::now())) {
      response->pages.clear();
      response->code = ResponseCode::kDeadlineExceeded;
      return Status::OK();
    }
    std::sort(frontier.begin(), frontier.end(), [repr](PageId a, PageId b) {
      return repr->LocalityKey(a) < repr->LocalityKey(b);
    });
    next.clear();
    for (PageId p : frontier) {
      WG_RETURN_IF_ERROR(cursor->Links(p, &links));
      for (PageId q : links) {
        if (!seen[q]) {
          seen[q] = 1;
          next.push_back(q);
          response->pages.push_back(q);
        }
      }
    }
    frontier.swap(next);
  }
  std::sort(response->pages.begin(), response->pages.end());
  return Status::OK();
}

ServiceMetrics QueryService::Snapshot() const {
  ServiceMetrics m;
  m.submitted = submitted_;
  m.completed = completed_;
  m.rejected = rejected_;
  m.timed_out = timed_out_;
  m.errors = errors_;
  m.queue_depth = queue_.size();
  queue_depth_.Set(static_cast<double>(m.queue_depth));
  m.p50_seconds = latency_.Quantile(0.5);
  m.p99_seconds = latency_.Quantile(0.99);
  std::shared_ptr<GraphRepresentation> pinned = CurrentForward();
  GraphRepresentation* forward = pinned ? pinned.get() : ctx_.forward;
  if (forward != nullptr) {
    const ReprStats& stats = forward->stats();
    m.cache_hits = stats.cache_hits;
    m.cache_misses = stats.cache_misses;
    uint64_t lookups = m.cache_hits + m.cache_misses;
    m.cache_hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(m.cache_hits) /
                           static_cast<double>(lookups);
  }
  return m;
}

}  // namespace wg::server
