#ifndef WG_SERVER_WORKLOAD_H_
#define WG_SERVER_WORKLOAD_H_

#include <string>
#include <vector>

#include "server/request.h"
#include "util/status.h"

// Request streams for driving a QueryService: a deterministic synthetic
// workload (mixed out/in/k-hop traffic with a Zipf-skewed page popularity,
// the shape of real serving traffic) and a plain-text request file parser
// for replaying captured or hand-written workloads through wgserve.

namespace wg::server {

struct WorkloadOptions {
  size_t num_requests = 10000;
  uint64_t seed = 1;
  size_t num_pages = 0;  // page-id space; required

  // Relative frequencies of the request types (complex queries are driven
  // explicitly via request files, not the synthetic mix).
  double out_weight = 6.0;
  double in_weight = 3.0;
  double khop_weight = 1.0;
  int khop_k = 2;

  // Page popularity skew: requests hit page ranks Zipf(theta)-distributed
  // over a shuffled id space, so a small hot set dominates -- what makes
  // a read-through cache worth serving from.
  double zipf_theta = 0.8;
};

// Deterministic for a given options struct.
std::vector<Request> SyntheticWorkload(const WorkloadOptions& options);

// Parses one request per line; blank lines and '#' comments are skipped:
//   out <page>
//   in <page>
//   khop <page> <k>
//   query <number 1..6>
// Page ids must be < num_pages.
Result<std::vector<Request>> ParseRequestFile(const std::string& path,
                                              size_t num_pages);

}  // namespace wg::server

#endif  // WG_SERVER_WORKLOAD_H_
