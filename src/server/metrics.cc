#include "server/metrics.h"

#include <cstdio>

namespace wg::server {

std::string ServiceMetrics::ToString() const {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu completed=%llu rejected=%llu timed_out=%llu "
      "errors=%llu queue_depth=%zu p50=%.3fms p99=%.3fms "
      "cache_hits=%llu cache_misses=%llu hit_rate=%.3f",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(errors), queue_depth,
      p50_seconds * 1e3, p99_seconds * 1e3,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate);
  return buf;
}

}  // namespace wg::server
