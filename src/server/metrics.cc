#include "server/metrics.h"

#include <cmath>
#include <cstdio>

namespace wg::server {

void LatencyHistogram::Record(double seconds) {
  double micros = seconds * 1e6;
  size_t bucket = 0;
  if (micros >= 1.0) {
    bucket = static_cast<size_t>(std::log2(micros));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  uint64_t total = 0;
  std::array<uint64_t, kBuckets> snap;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += snap[i];
    if (seen > rank) {
      // Upper bound of bucket i: 2^(i+1) microseconds.
      return std::ldexp(1.0, static_cast<int>(i) + 1) * 1e-6;
    }
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets)) * 1e-6;
}

std::string ServiceMetrics::ToString() const {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu completed=%llu rejected=%llu timed_out=%llu "
      "errors=%llu queue_depth=%zu p50=%.3fms p99=%.3fms "
      "cache_hits=%llu cache_misses=%llu hit_rate=%.3f",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(errors), queue_depth,
      p50_seconds * 1e3, p99_seconds * 1e3,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate);
  return buf;
}

}  // namespace wg::server
