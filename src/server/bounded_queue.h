#ifndef WG_SERVER_BOUNDED_QUEUE_H_
#define WG_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

// A bounded multi-producer/multi-consumer queue with non-blocking admission:
// producers TryPush and get an immediate refusal when the queue is at
// capacity (the service surfaces this as a kRejected response -- explicit
// backpressure instead of unbounded memory growth under overload), while
// consumers block in Pop until work arrives or the queue is closed.

namespace wg::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Admits `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available (returns true) or the queue is
  // closed and drained (returns false).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // After Close, TryPush refuses and Pop drains the backlog then returns
  // false; blocked consumers wake up.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wg::server

#endif  // WG_SERVER_BOUNDED_QUEUE_H_
