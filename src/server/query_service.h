#ifndef WG_SERVER_QUERY_SERVICE_H_
#define WG_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "query/queries.h"
#include "server/bounded_queue.h"
#include "server/metrics.h"
#include "server/request.h"

// The serving layer over the S-Node store: a fixed-size worker pool pulls
// typed requests (server/request.h) off a bounded MPMC queue and executes
// them concurrently against a shared QueryContext. Admission control is
// explicit -- when the queue is full, Submit completes the request
// immediately with kRejected rather than queueing unboundedly -- and every
// request may carry a deadline that is honored both at dequeue and during
// k-hop expansion.
//
// Thread-safety contract: the representations in the QueryContext must be
// safe for concurrent reads. SNodeRepr is (sharded singleflight cache,
// atomic stats; see snode/snode_repr.h); the baseline schemes are not, so
// serve them with num_workers = 1.

namespace wg::server {

struct QueryServiceOptions {
  size_t num_workers = 4;
  size_t queue_capacity = 256;
  // Invoked (outside the swap lock) after SwapForward installs a new
  // forward representation, with the representation just installed --
  // nullptr when reverting to the constructor-supplied one. This is the
  // hook the serving binary uses to kick a background cache warmer at
  // every generation flip, so the first requests against the new
  // generation don't eat the whole cold-read cliff.
  std::function<void(const std::shared_ptr<GraphRepresentation>&)> on_swap;
};

class QueryService {
 public:
  // `ctx` must outlive the service. `ctx.forward` is required; `backward`
  // is needed for kInNeighbors, and corpus/index/pagerank for
  // kComplexQuery (requests needing an absent component fail kError).
  QueryService(const QueryContext& ctx, const QueryServiceOptions& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Non-blocking admission. The future resolves when a worker completes
  // the request -- or immediately with kRejected under backpressure.
  std::future<Response> Submit(Request request);

  // Executes `request` inline on the calling thread, bypassing the queue
  // and pool. This is the single-threaded reference path: tests and
  // benchmarks compare concurrent Submit results against it.
  Response Execute(const Request& request) const;

  // Atomically replaces the forward representation for all requests that
  // *start* after this call; in-flight requests keep the representation
  // they pinned at entry (the shared_ptr holds it alive until they
  // drain). This is how the versioned snapshot store flips a serving
  // process between generations without stopping the world -- pass
  // version::ReprOf(generation) so the whole generation (repr + store +
  // manifest) lives as long as the last request using it. Passing nullptr
  // reverts to the constructor-supplied ctx.forward.
  void SwapForward(std::shared_ptr<GraphRepresentation> forward);

  // The forward override currently installed (nullptr when serving the
  // constructor-supplied representation).
  std::shared_ptr<GraphRepresentation> CurrentForward() const;

  // Stops admission, drains queued requests, and joins the workers.
  // Idempotent; also run by the destructor.
  void Shutdown();

  ServiceMetrics Snapshot() const;

  size_t num_workers() const { return workers_.size(); }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  static Status CollectNeighbors(GraphRepresentation* repr, PageId page,
                                 std::vector<PageId>* out);
  Status ExecuteKHop(const Request& request, GraphRepresentation* repr,
                     Response* response) const;

  QueryContext ctx_;
  // Forward-representation hot swap (SwapForward). Requests pin a copy at
  // entry, so an old generation drains naturally after a flip.
  mutable std::mutex forward_mu_;
  std::shared_ptr<GraphRepresentation> forward_override_;
  QueryServiceOptions options_;
  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};

  // Registry-backed outcome counters and latency distribution: one
  // wg_service_requests_total{service=<id>,outcome=...} series each plus
  // wg_service_latency_us{service=<id>}, bound in the constructor.
  // Snapshot() is a thin view over these cells; the metric registry
  // exposition sees the same numbers.
  obs::Counter submitted_;
  obs::Counter completed_;
  obs::Counter rejected_;
  obs::Counter timed_out_;
  obs::Counter errors_;
  obs::Gauge queue_depth_;
  LatencyHistogram latency_;
};

}  // namespace wg::server

#endif  // WG_SERVER_QUERY_SERVICE_H_
