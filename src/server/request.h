#ifndef WG_SERVER_REQUEST_H_
#define WG_SERVER_REQUEST_H_

#include <chrono>
#include <vector>

#include "graph/webgraph.h"
#include "query/queries.h"
#include "util/status.h"

// The typed request/response vocabulary of the serving layer. A request is
// one unit of work for the QueryService worker pool: a primitive adjacency
// lookup (out- or in-neighbors), a k-hop neighborhood expansion, or one of
// the paper's six Table-3 complex queries.

namespace wg::server {

enum class RequestType {
  kOutNeighbors,   // out-links of `page` (forward representation)
  kInNeighbors,    // in-links of `page` (backward/WG^T representation)
  kKHop,           // pages within <= `k` forward hops of `page`
  kComplexQuery,   // Table-3 query `query_number` (1..6)
};

struct Request {
  RequestType type = RequestType::kOutNeighbors;
  PageId page = 0;       // kOutNeighbors / kInNeighbors / kKHop
  int k = 1;             // kKHop radius
  int query_number = 1;  // kComplexQuery: 1..6

  // Absolute deadline; default (epoch) means none. A request whose
  // deadline has passed when a worker picks it up -- or expires mid
  // k-hop expansion -- completes as kDeadlineExceeded.
  std::chrono::steady_clock::time_point deadline{};

  // Extra time the executor sleeps before running the request, for
  // workload shaping: lets tests and benchmarks model slow handlers
  // deterministically (queue-full and deadline paths) without touching
  // the graph code.
  std::chrono::microseconds simulated_work{0};

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }
};

inline const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kOutNeighbors: return "out-neighbors";
    case RequestType::kInNeighbors: return "in-neighbors";
    case RequestType::kKHop: return "k-hop";
    case RequestType::kComplexQuery: return "complex-query";
  }
  return "unknown";
}

enum class ResponseCode {
  kOk = 0,
  kRejected,          // bounded queue full (backpressure) or shut down
  kDeadlineExceeded,  // deadline passed before or during execution
  kError,             // executor returned a non-OK Status
};

struct Response {
  ResponseCode code = ResponseCode::kOk;
  Status status;               // non-OK iff kError
  std::vector<PageId> pages;   // sorted result set (neighbor/k-hop types)
  QueryResult query;           // kComplexQuery only
  double latency_seconds = 0;  // enqueue -> completion (kOk/kError/kDeadline)
  // Id of the request's trace when one was collected (sink-sampled or
  // /tracez ring active); 0 otherwise. Slow requests are looked up in
  // /tracez under this id.
  uint64_t trace_id = 0;
};

inline const char* ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk: return "ok";
    case ResponseCode::kRejected: return "rejected";
    case ResponseCode::kDeadlineExceeded: return "deadline-exceeded";
    case ResponseCode::kError: return "error";
  }
  return "unknown";
}

}  // namespace wg::server

#endif  // WG_SERVER_REQUEST_H_
