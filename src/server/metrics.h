#ifndef WG_SERVER_METRICS_H_
#define WG_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

// Service-side observability: a lock-free log-bucketed latency histogram
// (p50/p99 without storing samples) plus the snapshot struct the service
// hands out. Counters are relaxed atomics -- they are reporting state, not
// synchronization.

namespace wg::server {

// Latencies land in bucket floor(log2(micros)), covering ~1us .. ~35min.
// Quantiles are read from bucket upper bounds, so they are exact to within
// one power of two -- plenty for a p50-vs-p99 shape report.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(double seconds);

  // Value (seconds) below which a `q` fraction of recorded latencies fall;
  // 0 if nothing was recorded. q in [0, 1].
  double Quantile(double q) const;

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
};

// A point-in-time view of a QueryService (see query_service.h).
struct ServiceMetrics {
  uint64_t submitted = 0;
  uint64_t completed = 0;   // executed to kOk
  uint64_t rejected = 0;    // refused at admission (queue full / shut down)
  uint64_t timed_out = 0;   // deadline exceeded
  uint64_t errors = 0;      // executor returned non-OK
  size_t queue_depth = 0;   // requests waiting at snapshot time

  double p50_seconds = 0;
  double p99_seconds = 0;

  // Decoded-graph cache behaviour of the forward representation (the
  // serving hot path); hit_rate is hits / (hits + misses).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;

  std::string ToString() const;
};

}  // namespace wg::server

#endif  // WG_SERVER_METRICS_H_
