#ifndef WG_SERVER_METRICS_H_
#define WG_SERVER_METRICS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

// Service-side observability: a lock-free log-bucketed latency histogram
// (p50/p99 without storing samples) plus the snapshot struct the service
// hands out. Since the observability PR both are thin views over
// obs/metrics.h registry cells -- the service's counters and latency
// distribution are queryable from the process-wide exposition endpoints
// as well as through Snapshot().

namespace wg::server {

// Latencies land in power-of-two buckets (bucket i holds micros in
// (2^i, 2^(i+1)], upper bound inclusive), covering ~1us .. ~35min, with
// everything beyond 2^31 us collapsed into the last (overflow) bucket.
// Quantiles are read from bucket upper bounds, giving the power-of-two
// exactness bound:
//
//   * for a true quantile t >= 1us the reported value v is the enclosing
//     bucket's inclusive upper bound, so t <= v <= 2t -- never an
//     under-report, at worst doubled, exact when t is a power of two;
//   * latencies below 1us share the first bucket and report as 2us;
//   * latencies at or beyond 2^31 us (~35.8 min) land in the overflow
//     bucket and report as its upper bound 2^32 us (~71.6 min).
//
// Plenty for a p50-vs-p99 shape report; see server_histogram_test.cc for
// the edge cases that pin this contract down.
class LatencyHistogram {
 public:
  void Record(double seconds) { hist_.Record(seconds * 1e6); }

  // Record plus exemplar capture: when the observation belongs to a
  // collected trace (`trace_id` != 0), it becomes the distribution's
  // current exemplar, linking the histogram to a /tracez entry. Callers
  // gate this on their slow threshold so the exemplar always points at a
  // request worth reading.
  void RecordWithExemplar(double seconds, uint64_t trace_id) {
    hist_.Record(seconds * 1e6);
    hist_.SetExemplar(seconds * 1e6, trace_id);
  }

  // Value (seconds) below which a `q` fraction of recorded latencies
  // fall, subject to the bucket bound above; 0 if nothing was recorded.
  // q in [0, 1]; q=1 reports the bucket of the largest recorded sample.
  double Quantile(double q) const { return hist_.Quantile(q) * 1e-6; }

  uint64_t count() const { return hist_.count(); }

  // Re-points the underlying cell at a registry-owned series (recorded
  // unit: microseconds), so the distribution shows up in the exposition.
  void Bind(obs::MetricRegistry& registry, const std::string& name,
            const obs::Labels& labels, const std::string& help = "") {
    hist_ = registry.GetHistogram(name, labels, help);
  }

 private:
  obs::Histogram hist_;
};

// A point-in-time view of a QueryService (see query_service.h). Since the
// service's counters live in the metric registry, this is a convenience
// snapshot -- the same numbers are exported by MetricRegistry dumps.
struct ServiceMetrics {
  uint64_t submitted = 0;
  uint64_t completed = 0;   // executed to kOk
  uint64_t rejected = 0;    // refused at admission (queue full / shut down)
  uint64_t timed_out = 0;   // deadline exceeded
  uint64_t errors = 0;      // executor returned non-OK
  size_t queue_depth = 0;   // requests waiting at snapshot time

  double p50_seconds = 0;
  double p99_seconds = 0;

  // Decoded-graph cache behaviour of the forward representation (the
  // serving hot path); hit_rate is hits / (hits + misses).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;

  std::string ToString() const;
};

}  // namespace wg::server

#endif  // WG_SERVER_METRICS_H_
