#include "server/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/rng.h"

namespace wg::server {

std::vector<Request> SyntheticWorkload(const WorkloadOptions& options) {
  WG_CHECK(options.num_pages > 0);
  Rng rng(options.seed);
  // Zipf over ranks, ranks mapped to pages by a seeded shuffle so the hot
  // set is spread across supernodes instead of clustering at low ids.
  ZipfSampler zipf(options.num_pages, options.zipf_theta);
  std::vector<PageId> page_of_rank(options.num_pages);
  for (size_t i = 0; i < options.num_pages; ++i) {
    page_of_rank[i] = static_cast<PageId>(i);
  }
  for (size_t i = options.num_pages - 1; i > 0; --i) {
    std::swap(page_of_rank[i], page_of_rank[rng.Uniform(i + 1)]);
  }

  double total_weight =
      options.out_weight + options.in_weight + options.khop_weight;
  WG_CHECK(total_weight > 0);
  std::vector<Request> requests;
  requests.reserve(options.num_requests);
  for (size_t i = 0; i < options.num_requests; ++i) {
    Request request;
    double pick = rng.NextDouble() * total_weight;
    if (pick < options.out_weight) {
      request.type = RequestType::kOutNeighbors;
    } else if (pick < options.out_weight + options.in_weight) {
      request.type = RequestType::kInNeighbors;
    } else {
      request.type = RequestType::kKHop;
      request.k = options.khop_k;
    }
    request.page = page_of_rank[zipf.Sample(&rng)];
    requests.push_back(request);
  }
  return requests;
}

Result<std::vector<Request>> ParseRequestFile(const std::string& path,
                                              size_t num_pages) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("cannot open request file: " + path);
  }
  std::vector<Request> requests;
  char line[256];
  int lineno = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    char op[32];
    unsigned long a = 0, b = 0;
    if (line[0] == '#' || std::sscanf(line, "%31s", op) != 1) continue;
    Request request;
    int fields = std::sscanf(line, "%31s %lu %lu", op, &a, &b);
    auto bad = [&](const char* why) {
      std::fclose(f);
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + why);
    };
    if (std::strcmp(op, "out") == 0 || std::strcmp(op, "in") == 0) {
      if (fields < 2) return bad("expected: out|in <page>");
      if (a >= num_pages) return bad("page id out of range");
      request.type = std::strcmp(op, "out") == 0 ? RequestType::kOutNeighbors
                                                 : RequestType::kInNeighbors;
      request.page = static_cast<PageId>(a);
    } else if (std::strcmp(op, "khop") == 0) {
      if (fields < 3) return bad("expected: khop <page> <k>");
      if (a >= num_pages) return bad("page id out of range");
      if (b == 0 || b > 16) return bad("k must be in [1, 16]");
      request.type = RequestType::kKHop;
      request.page = static_cast<PageId>(a);
      request.k = static_cast<int>(b);
    } else if (std::strcmp(op, "query") == 0) {
      if (fields < 2) return bad("expected: query <1..6>");
      if (a < 1 || a > 6) return bad("query number must be 1..6");
      request.type = RequestType::kComplexQuery;
      request.query_number = static_cast<int>(a);
    } else {
      return bad("unknown op (expected out/in/khop/query)");
    }
    requests.push_back(request);
  }
  std::fclose(f);
  return requests;
}

}  // namespace wg::server
